"""Async live log sources: file tails, sockets, adapted iterators.

The offline model (:class:`~repro.logs.sources.LogSource`) is a finite
iterator of records; a deployed MoniLog instead tails N *live* inputs
concurrently — the paper's platform connects 24 sources to one system.
This module provides the async counterparts:

* :class:`FileTailSource` — follows a log file the way ``tail -F``
  does: incremental reads, partial lines held until their newline
  arrives, rotation (inode change / file vanishing) and truncation
  (file shrinking) detected and survived, byte-offset checkpoints for
  exact resume.
* :class:`SocketSource` — a TCP client with automatic reconnect and
  back-off; the transport model of a log shipper feeding MoniLog over
  the network.  Three framings: newline-delimited plain lines,
  JSON-lines, and the length-prefixed binary ``framed`` protocol that
  carries a tenant id with every record (docs/gateway.md).  Any of
  the three can run over TLS (``tls = true`` plus cert/key paths).
* :class:`AsyncSourceAdapter` — lifts any synchronous
  :class:`~repro.logs.sources.LogSource` into the async world
  (cooperatively yielding so one in-memory source cannot monopolize
  the event loop).  :meth:`LogSource.as_async
  <repro.logs.sources.LogSource.as_async>` is the discoverable hook.

Every source yields :class:`SourceItem` — the record plus the offset
token that the checkpoint machinery commits once the record has been
fully processed.  Line → record conversion mirrors
:func:`repro.logs.formats.read_log_lines` (format auto-detection,
unparseable lines kept as whole-line messages, per-source sequence
numbering) so a tailed file produces byte-identical records to reading
the same file offline.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import ssl
from collections.abc import AsyncIterator
from dataclasses import dataclass, replace

from repro.api.registry import register_component
from repro.logs.formats import LineFormat, detect_format
from repro.logs.record import DEFAULT_TENANT, LogRecord, Severity
from repro.logs.sources import LogSource

#: Bytes of file head hashed into a checkpoint signature.  Appends
#: never touch them, so the hash is stable across normal growth while
#: catching rotation-with-same-size and in-place rewrites.
_SIGNATURE_HEAD_BYTES = 256

#: ``framed`` wire format (docs/gateway.md): every frame is a 4-byte
#: big-endian body length, then a 2-byte big-endian tenant length, the
#: tenant id (UTF-8), and the payload — one JSON-lines record frame
#: (:func:`render_json_line`) or a plain log line.
_FRAME_LEN_BYTES = 4
_TENANT_LEN_BYTES = 2

#: Default ceiling on one framed-transport frame.  A length prefix
#: larger than this is treated as a protocol error (corrupt stream or
#: a non-framed peer), not an allocation request.
DEFAULT_MAX_FRAME_BYTES = 1 << 20


def _head_matches(path: str, signature: dict) -> bool:
    """Does the on-disk head still hash to the signature's head?"""
    length = int(signature.get("head_len", 0))
    try:
        with open(path, "rb") as handle:
            head = handle.read(length) if length else b""
    except (FileNotFoundError, PermissionError):
        return False
    if len(head) != length:
        return False  # shorter than the signed head: rewritten smaller
    return hashlib.sha1(head).hexdigest() == signature.get("head_sha1")


@dataclass(frozen=True, slots=True)
class SourceItem:
    """One live record plus its resume token.

    ``offset`` is the source-specific position *after* this record —
    byte offset for file tails, record count for sockets and adapted
    sources.  Committing it (see :mod:`repro.ingest.checkpoint`) means
    "everything up to and including this record was processed".
    ``tenant`` mirrors ``record.tenant`` so routing layers (the
    multi-tenant gateway) can dispatch without touching the record.
    """

    record: LogRecord
    source: str
    offset: int
    tenant: str = DEFAULT_TENANT


class AsyncLogSource:
    """Abstract live source: an async iterator of :class:`SourceItem`.

    ``items(start_offset)`` must resume *after* the given offset token
    (sources that cannot replay, like sockets, start live but keep
    their offsets monotone from the baseline).  Implementations stop
    iterating when the source is exhausted and not in follow mode, or
    when cancelled by the ingestion service.

    Sources whose offsets refer to a mutable backing file participate
    in checkpoint signatures: :meth:`signature` describes the current
    backing file (stored next to the committed offset) and
    :meth:`resume_offset` decides whether a checkpointed offset is
    still valid for the file now on disk.  The defaults — no signature,
    trust the offset — fit sources whose offsets are plain record
    counts (sockets, adapted iterators).
    """

    name: str

    @property
    def healthy(self) -> bool:
        """Is the source currently able to deliver records?

        Exported as the ``monilog_source_healthy`` gauge and consulted
        by ``/readyz`` pull checks.  The default (always healthy) fits
        sources with no degraded state (in-memory adapters); file tails
        and sockets override it with their live transport state.
        """
        return True

    def items(self, start_offset: int = 0) -> AsyncIterator[SourceItem]:
        raise NotImplementedError

    def signature(self) -> dict | None:
        """Identity of the backing file as of now; ``None`` = no file."""
        return None

    def resume_offset(self, offset: int, signature: dict | None) -> int:
        """Where to actually resume, given the checkpointed state."""
        return offset


class _LineConverter:
    """Incremental line → record conversion, ``read_log_lines``-compatible.

    Keeps the per-source state the offline reader keeps per file: the
    detected (or imposed) :class:`LineFormat`, the running sequence
    number, and the fallback clock that stamps unparseable lines.
    Format detection is one-shot, on the first sample of lines the
    source sees — for a pre-existing file that is the same leading
    sample the offline reader detects on.
    """

    def __init__(self, source_name: str,
                 line_format: LineFormat | None = None,
                 tenant: str = DEFAULT_TENANT) -> None:
        self._source_name = source_name
        self._format = line_format
        self._detected = line_format is not None
        self._tenant = tenant
        self._sequence = 0
        self._fallback_clock = 0.0

    def detect_on(self, sample: list[str]) -> None:
        """Fix the line format from the first available sample."""
        if not self._detected:
            self._format = detect_format(sample[:100])
            self._detected = True

    def convert(self, line: str) -> LogRecord | None:
        """One line to one record; ``None`` for blank lines."""
        # Normalize one line terminator: sources split raw bytes on
        # \n, so a CRLF file would otherwise leave a trailing \r that
        # the offline text-mode reader (universal newlines) never sees
        # — and parity with read_log_lines is the contract here.
        if line.endswith("\n"):
            line = line[:-1]
        if line.endswith("\r"):
            line = line[:-1]
        if not line.strip():
            return None
        self.detect_on([line])
        record = self._format.parse(line) if self._format is not None else None
        if record is None:
            self._fallback_clock += 1e-3
            record = LogRecord(
                timestamp=self._fallback_clock,
                source=self._source_name,
                severity=Severity.INFO,
                message=line,
            )
        record = LogRecord(
            timestamp=record.timestamp,
            source=record.source,
            severity=record.severity,
            message=record.message,
            session_id=record.session_id,
            sequence=self._sequence,
            labels=record.labels,
            tenant=self._tenant,
        )
        self._sequence += 1
        return record

    def convert_json(self, line: str) -> LogRecord | None:
        """One JSON-lines frame to one record (``framing="jsonl"``).

        The frame is a JSON object with a ``message`` field plus
        optional ``timestamp`` (epoch seconds), ``source``,
        ``severity``, ``session_id``, and ``labels``.  Because JSON
        strings escape control characters, a message *containing*
        newlines travels as ``\\n`` inside one frame — the
        embedded-newline safety the trusted line protocol cannot
        offer.  Robustness stance: a line that is not a JSON object
        with a string message falls back to the plain-line conversion
        (kept as a whole-line record), never dropped — mirroring how
        the header parsers treat unparseable lines.
        """
        if line.endswith("\n"):
            line = line[:-1]
        if line.endswith("\r"):
            line = line[:-1]
        if not line.strip():
            return None
        try:
            payload = json.loads(line)
        except ValueError:
            payload = None
        if not isinstance(payload, dict) or not isinstance(
                payload.get("message"), str):
            return self.convert(line)
        timestamp = payload.get("timestamp")
        if not isinstance(timestamp, (int, float)) or isinstance(
                timestamp, bool):
            self._fallback_clock += 1e-3
            timestamp = self._fallback_clock
        severity = Severity.INFO
        if isinstance(payload.get("severity"), str):
            try:
                severity = Severity.from_text(payload["severity"])
            except ValueError:
                pass
        session_id = payload.get("session_id")
        labels = payload.get("labels")
        tenant = payload.get("tenant")
        record = LogRecord(
            timestamp=float(timestamp),
            source=str(payload.get("source") or self._source_name),
            severity=severity,
            message=payload["message"],
            session_id=str(session_id) if session_id is not None else None,
            sequence=self._sequence,
            labels=frozenset(str(label) for label in labels)
            if isinstance(labels, (list, tuple)) else frozenset(),
            tenant=tenant if isinstance(tenant, str) and tenant
            else self._tenant,
        )
        self._sequence += 1
        return record


def render_json_line(record: LogRecord) -> str:
    """One record as a JSON-lines frame (the shipper side of
    ``framing="jsonl"``).

    Newlines inside the message are escaped by JSON, so the frame is
    always exactly one line — safe to ship over the newline-delimited
    transport no matter what the message contains.
    """
    payload: dict[str, object] = {
        "timestamp": record.timestamp,
        "source": record.source,
        "severity": record.severity.name,
        "message": record.message,
    }
    if record.session_id is not None:
        payload["session_id"] = record.session_id
    if record.labels:
        payload["labels"] = sorted(record.labels)
    if record.tenant != DEFAULT_TENANT:
        payload["tenant"] = record.tenant
    return json.dumps(payload, ensure_ascii=False)


def encode_frame(payload: str | bytes, tenant: str = "") -> bytes:
    """Wire-encode one ``framed``-transport frame (the shipper side).

    Layout: a 4-byte big-endian body length, then the body — a 2-byte
    big-endian tenant length, the tenant id (UTF-8), and the payload
    bytes.  An empty tenant means "use the receiving source's default
    tenant".  The payload is normally a JSON-lines record frame
    (:func:`render_json_line`); a plain log line works too because the
    receiver falls back to header parsing.
    """
    raw = payload.encode("utf-8") if isinstance(payload, str) else bytes(payload)
    tenant_bytes = tenant.encode("utf-8")
    if len(tenant_bytes) > 0xFFFF:
        raise ValueError(
            f"tenant id exceeds {0xFFFF} UTF-8 bytes: {tenant[:64]!r}...")
    body = (len(tenant_bytes).to_bytes(_TENANT_LEN_BYTES, "big")
            + tenant_bytes + raw)
    if len(body) > 0xFFFFFFFF:
        raise ValueError(f"frame body exceeds 2**32-1 bytes: {len(body)}")
    return len(body).to_bytes(_FRAME_LEN_BYTES, "big") + body


def render_framed_record(record: LogRecord, tenant: str | None = None) -> bytes:
    """One record as a ``framed``-transport frame.

    The tenant header defaults to the record's own tenant; pass
    ``tenant`` to override (e.g. a shipper multiplexing customers over
    one connection).
    """
    return encode_frame(render_json_line(record),
                        record.tenant if tenant is None else tenant)


def client_tls_context(
    cafile: str | None = None,
    certfile: str | None = None,
    keyfile: str | None = None,
    *,
    verify: bool = True,
) -> ssl.SSLContext:
    """Build the client-side :class:`ssl.SSLContext` the transport uses.

    ``cafile`` pins the trust root (a private CA or the shipper's
    self-signed cert); ``certfile``/``keyfile`` present a client
    certificate for mutual TLS.  ``verify=False`` disables certificate
    and hostname checks — debugging only, never production.
    """
    context = ssl.create_default_context(ssl.Purpose.SERVER_AUTH,
                                         cafile=cafile)
    if certfile:
        context.load_cert_chain(certfile, keyfile)
    if not verify:
        context.check_hostname = False
        context.verify_mode = ssl.CERT_NONE
    return context


@register_component("source", "file")
class FileTailSource(AsyncLogSource):
    """Follow a log file like ``tail -F``, with checkpointable offsets.

    Args:
        path: the file to tail; it may not exist yet (the source waits
            for it in follow mode).
        name: source name for stats and checkpoints; defaults to the
            file's basename.
        line_format: header layout; auto-detected from the first lines
            when omitted.
        follow: keep polling for growth, rotation, and truncation
            (live mode).  ``False`` drains to end-of-file once and
            stops — the replay/catch-up mode benchmarks and ``tail
            --once`` use.
        poll_interval: seconds between checks while the file is idle.
        chunk_size: bytes per read; the unit the bench's storage-
            latency simulation charges for.
        tenant: tenant stamped on every record this tail emits; the
            default keeps legacy single-stream behavior byte-identical.

    A partial line at end-of-file stays buffered until its newline
    arrives (mid-line EOF is how live files look mid-write); in drain
    mode, or when the file rotates underneath the tail, the buffered
    partial is emitted as a final line so no bytes are ever dropped.
    ``rotations`` and ``truncations`` count the restarts.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        name: str | None = None,
        *,
        line_format: LineFormat | None = None,
        follow: bool = True,
        poll_interval: float = 0.05,
        chunk_size: int = 65536,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {poll_interval}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.path = os.fspath(path)
        self.name = name or os.path.basename(self.path)
        self.line_format = line_format
        self.follow = follow
        self.poll_interval = poll_interval
        self.chunk_size = chunk_size
        self.tenant = tenant
        self.rotations = 0
        self.truncations = 0

    @property
    def healthy(self) -> bool:
        """The tailed file currently exists and is readable.

        A follow-mode tail waiting for the file to appear reads as
        degraded on purpose: an operator watching ``/readyz`` should
        see "the file is not there" rather than a silent idle tail.
        """
        try:
            os.stat(self.path)
        except OSError:
            return False
        return True

    async def _read_chunk(self, handle) -> bytes:
        """One incremental read; subclassable to model storage latency."""
        return handle.read(self.chunk_size)

    def _open(self, offset: int):
        """Open at ``offset``; returns ``(handle, offset)`` or ``None``.

        An offset beyond the current size means the file was rotated or
        truncated since the checkpoint — start over from the top.
        """
        try:
            handle = open(self.path, "rb")
        except (FileNotFoundError, PermissionError):
            return None
        size = os.fstat(handle.fileno()).st_size
        if size < offset:
            self.truncations += 1
            offset = 0
        handle.seek(offset)
        return handle, offset

    def signature(self) -> dict | None:
        """Identify the file behind this tail's offsets.

        ``inode``/``device`` pin the directory entry's identity;
        ``head_sha1`` hashes the file's first ``head_len`` (≤ 256)
        bytes, which appends never change — so the signature survives
        normal growth but changes under rotation *and* under an
        in-place rewrite, the two cases a byte offset alone cannot
        see.  ``None`` while the file does not exist.
        """
        try:
            with open(self.path, "rb") as handle:
                status = os.fstat(handle.fileno())
                head = handle.read(_SIGNATURE_HEAD_BYTES)
        except (FileNotFoundError, PermissionError):
            return None
        return {
            "inode": status.st_ino,
            "device": status.st_dev,
            "head_len": len(head),
            "head_sha1": hashlib.sha1(head).hexdigest(),
        }

    def resume_offset(self, offset: int, signature: dict | None) -> int:
        """Validate a checkpointed offset against the file on disk.

        Distinguishes the two ways a same-looking offset can lie:
        a different inode means the file was **rotated** (counted in
        ``rotations``), a same-inode head mismatch means it was
        **rewritten in place** (counted in ``truncations``); both
        restart from the top.  Without a stored signature (legacy
        checkpoint) or with the file absent, the offset is trusted
        as before.
        """
        if offset <= 0 or signature is None:
            return offset
        current = self.signature()
        if current is None:
            return offset
        rotated = (current.get("inode"), current.get("device")) != (
            signature.get("inode"), signature.get("device"))
        if not rotated and _head_matches(self.path, signature):
            return offset
        if rotated:
            self.rotations += 1
        else:
            self.truncations += 1
        return 0

    def _stale(self, handle, consumed: int) -> str | None:
        """``"rotated"``/``"truncated"``/``None`` for an EOF'd handle."""
        try:
            on_disk = os.stat(self.path)
        except (FileNotFoundError, PermissionError):
            return "rotated"
        open_file = os.fstat(handle.fileno())
        if (on_disk.st_ino, on_disk.st_dev) != (
                open_file.st_ino, open_file.st_dev):
            return "rotated"
        if on_disk.st_size < consumed:
            return "truncated"
        return None

    async def items(self, start_offset: int = 0) -> AsyncIterator[SourceItem]:
        offset = start_offset
        buffer = b""
        handle = None
        converter = _LineConverter(self.name, self.line_format, self.tenant)
        try:
            while True:
                if handle is None:
                    opened = self._open(offset)
                    if opened is None:
                        if not self.follow:
                            return
                        await asyncio.sleep(self.poll_interval)
                        continue
                    handle, offset = opened
                    buffer = b""
                chunk = await self._read_chunk(handle)
                if chunk:
                    buffer += chunk
                    *lines, buffer = buffer.split(b"\n")
                    if lines:
                        decoded = [raw.decode("utf-8", "replace")
                                   for raw in lines]
                        converter.detect_on(decoded)
                        for raw, line in zip(lines, decoded):
                            offset += len(raw) + 1
                            record = converter.convert(line)
                            if record is not None:
                                yield SourceItem(record, self.name, offset,
                                                 record.tenant)
                    continue
                # End of file: decide between waiting, restarting, stopping.
                stale = self._stale(handle, offset + len(buffer))
                if stale is not None or not self.follow:
                    if buffer:
                        # Trailing bytes with no newline: the writer is
                        # gone (rotation) or done (drain) — emit them.
                        offset += len(buffer)
                        record = converter.convert(
                            buffer.decode("utf-8", "replace"))
                        buffer = b""
                        if record is not None:
                            yield SourceItem(record, self.name, offset,
                                             record.tenant)
                    if stale is None:
                        return
                    if stale == "rotated":
                        self.rotations += 1
                    else:
                        self.truncations += 1
                    handle.close()
                    handle = None
                    offset = 0
                    continue
                await asyncio.sleep(self.poll_interval)
        finally:
            if handle is not None:
                handle.close()


@register_component("source", "socket")
class SocketSource(AsyncLogSource):
    """TCP log stream with automatic reconnect, optional TLS.

    Args:
        host / port: the peer emitting log records.
        name: source name; defaults to ``host:port``.
        line_format: header layout; auto-detected when omitted
            (``framing="lines"`` only).
        framing: how the byte stream decodes to records.  ``"lines"``
            (the trusted newline protocol): each line *is* the log
            line, header-parsed like a tailed file.  ``"jsonl"``: each
            line is a JSON object frame (see
            :meth:`_LineConverter.convert_json` /
            :func:`render_json_line`) — messages containing newlines
            survive because JSON escapes them inside the frame.
            ``"framed"``: length-prefixed binary frames carrying a
            tenant id plus a JSON record payload
            (:func:`encode_frame` / :func:`render_framed_record`) —
            the multi-tenant gateway transport.
        tenant: tenant stamped on records when the transport does not
            carry one (``lines``/``jsonl`` without an explicit frame
            tenant, ``framed`` frames with an empty tenant header).
        max_frame_bytes: ceiling on one ``framed`` frame; a larger
            length prefix is a protocol error — the frame is rejected,
            ``frame_errors`` incremented, and the connection cleanly
            re-dialed.
        reconnect: dial again after a disconnect (live mode); ``False``
            stops at the first clean disconnect.
        reconnect_delay: back-off between connection attempts.
        max_connect_attempts: give up after this many *consecutive*
            failed dials (``None``: retry forever).  A successful
            connection resets the counter.
        tls: wrap the connection in TLS.  The remaining ``tls_*``
            options shape the :class:`ssl.SSLContext` (see
            :func:`client_tls_context`): ``tls_cafile`` pins the trust
            root, ``tls_certfile``/``tls_keyfile`` present a client
            certificate, ``tls_verify=False`` disables verification
            (debugging only), and ``tls_server_hostname`` overrides
            the name checked against the server certificate (useful
            when dialing an IP address whose cert names a host).

    Offsets count records emitted (a socket cannot be replayed from a
    byte position); ``start_offset`` seeds the counter so checkpoint
    offsets stay monotone across restarts.  ``connects``,
    ``disconnects``, and ``frame_errors`` expose the transport's
    health for stats; the live connected/disconnected state is the
    :attr:`healthy` property, exported as the
    ``monilog_source_healthy`` gauge and a ``/readyz`` pull check.
    """

    #: The byte stream → record framings the socket transport understands.
    FRAMINGS = ("lines", "jsonl", "framed")

    def __init__(
        self,
        host: str,
        port: int,
        name: str | None = None,
        *,
        line_format: LineFormat | None = None,
        framing: str = "lines",
        tenant: str = DEFAULT_TENANT,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        reconnect: bool = True,
        reconnect_delay: float = 0.05,
        max_connect_attempts: int | None = None,
        tls: bool = False,
        tls_cafile: str | None = None,
        tls_certfile: str | None = None,
        tls_keyfile: str | None = None,
        tls_verify: bool = True,
        tls_server_hostname: str | None = None,
    ) -> None:
        if framing not in self.FRAMINGS:
            raise ValueError(
                f"framing must be one of {list(self.FRAMINGS)}, "
                f"got {framing!r}")
        if reconnect_delay <= 0:
            raise ValueError(
                f"reconnect_delay must be > 0, got {reconnect_delay}")
        if max_connect_attempts is not None and max_connect_attempts < 1:
            raise ValueError(
                "max_connect_attempts must be >= 1 or None, "
                f"got {max_connect_attempts}")
        if max_frame_bytes < _TENANT_LEN_BYTES + 1:
            raise ValueError(
                f"max_frame_bytes must be >= {_TENANT_LEN_BYTES + 1}, "
                f"got {max_frame_bytes}")
        if not tls and (tls_cafile or tls_certfile or tls_keyfile
                        or tls_server_hostname or not tls_verify):
            raise ValueError("tls_* options require tls = true")
        self.host = host
        self.port = port
        self.name = name or f"{host}:{port}"
        self.line_format = line_format
        self.framing = framing
        self.tenant = tenant
        self.max_frame_bytes = max_frame_bytes
        self.reconnect = reconnect
        self.reconnect_delay = reconnect_delay
        self.max_connect_attempts = max_connect_attempts
        self.tls = tls
        self.tls_server_hostname = tls_server_hostname
        self._ssl = client_tls_context(
            tls_cafile, tls_certfile, tls_keyfile, verify=tls_verify,
        ) if tls else None
        self.connects = 0
        self.disconnects = 0
        self.frame_errors = 0
        self._connected = False

    @property
    def healthy(self) -> bool:
        """Currently connected to the peer.

        ``False`` before the first dial, between reconnect attempts,
        and after the stream ends — the flapping-source signal the
        ``monilog_source_healthy`` gauge and ``/readyz`` surface.
        """
        return self._connected

    async def _connect(self):
        """One dial, TLS-wrapped when configured."""
        kwargs: dict[str, object] = {}
        if self._ssl is not None:
            kwargs["ssl"] = self._ssl
            if self.tls_server_hostname is not None:
                kwargs["server_hostname"] = self.tls_server_hostname
        return await asyncio.open_connection(self.host, self.port, **kwargs)

    async def _read_frame(self, reader) -> tuple[str, str] | None:
        """Read one length-prefixed frame; ``None`` ends the connection.

        A length prefix split across TCP segments is reassembled by
        ``readexactly``.  Protocol errors — an oversized or impossible
        length, a tenant length pointing past the body, a mid-frame
        EOF — count into ``frame_errors`` and return ``None`` so the
        caller drops the connection and re-dials from a clean frame
        boundary (resynchronizing inside a corrupt byte stream is not
        attempted).
        """
        try:
            header = await reader.readexactly(_FRAME_LEN_BYTES)
        except asyncio.IncompleteReadError as error:
            if error.partial:
                self.frame_errors += 1
            return None
        length = int.from_bytes(header, "big")
        if length < _TENANT_LEN_BYTES or length > self.max_frame_bytes:
            self.frame_errors += 1
            return None
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            self.frame_errors += 1
            return None
        tenant_length = int.from_bytes(body[:_TENANT_LEN_BYTES], "big")
        payload_start = _TENANT_LEN_BYTES + tenant_length
        if payload_start > length:
            self.frame_errors += 1
            return None
        tenant = body[_TENANT_LEN_BYTES:payload_start].decode(
            "utf-8", "replace")
        payload = body[payload_start:].decode("utf-8", "replace")
        return tenant, payload

    async def items(self, start_offset: int = 0) -> AsyncIterator[SourceItem]:
        offset = start_offset
        converter = _LineConverter(self.name, self.line_format, self.tenant)
        decode = (converter.convert_json if self.framing in ("jsonl", "framed")
                  else converter.convert)
        failures = 0
        while True:
            try:
                reader, writer = await self._connect()
            except OSError:
                failures += 1
                if (self.max_connect_attempts is not None
                        and failures >= self.max_connect_attempts):
                    return
                await asyncio.sleep(self.reconnect_delay)
                continue
            failures = 0
            self.connects += 1
            self._connected = True
            try:
                while True:
                    if self.framing == "framed":
                        frame = await self._read_frame(reader)
                        if frame is None:
                            break
                        tenant, line = frame
                    else:
                        raw = await reader.readline()
                        if not raw:
                            break
                        tenant, line = "", raw.decode("utf-8", "replace")
                    offset += 1
                    record = decode(line)
                    if record is None:
                        continue
                    if tenant and record.tenant != tenant:
                        record = replace(record, tenant=tenant)
                    yield SourceItem(record, self.name, offset, record.tenant)
            finally:
                self._connected = False
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, asyncio.CancelledError):
                    pass
            self.disconnects += 1
            if not self.reconnect:
                return
            await asyncio.sleep(self.reconnect_delay)


@register_component("source", "adapter")
class AsyncSourceAdapter(AsyncLogSource):
    """Lift a synchronous :class:`LogSource` into the async world.

    The adapter replays the wrapped source's records, yielding control
    to the event loop every ``yield_every`` records so an in-memory
    source cannot starve live tails of loop time.  Offsets count
    records, so ``start_offset`` skips an already-processed prefix —
    which makes replayed corpora resumable just like files.  A
    non-default ``tenant`` is stamped on replayed records that do not
    already carry one.
    """

    def __init__(self, source: LogSource, name: str | None = None,
                 *, yield_every: int = 64,
                 tenant: str = DEFAULT_TENANT) -> None:
        if yield_every < 1:
            raise ValueError(f"yield_every must be >= 1, got {yield_every}")
        self.source = source
        self.name = name or getattr(source, "name", type(source).__name__)
        self.yield_every = yield_every
        self.tenant = tenant

    async def items(self, start_offset: int = 0) -> AsyncIterator[SourceItem]:
        emitted = 0
        for count, record in enumerate(self.source, start=1):
            if count <= start_offset:
                continue
            emitted += 1
            if emitted % self.yield_every == 0:
                await asyncio.sleep(0)
            if (self.tenant != DEFAULT_TENANT
                    and record.tenant == DEFAULT_TENANT):
                record = replace(record, tenant=self.tenant)
            yield SourceItem(record, self.name, count, record.tenant)
