"""Per-source offset checkpoints: resume ingestion without replay.

A restarted ``tail`` must pick up where the previous process stopped
— re-emitting already-processed records would re-alert on sessions the
operator has already seen.  Two pieces cooperate:

* :class:`OffsetTracker` — per-source bookkeeping of which offsets
  have been *read* versus *processed*.  Because the merge stage
  reorders records across (and, for out-of-order timestamps, within)
  sources, a batch finishing does not mean every earlier offset of its
  sources was processed; the tracker therefore commits only the
  highest **contiguous** processed offset, exactly the position a
  restart may safely resume from.
* :class:`CheckpointStore` — a small JSON file mapping source name to
  committed offset, written atomically (temp file + ``os.replace``) so
  an interruption mid-save can never leave a torn checkpoint behind.

Offset semantics are per source kind: byte position after the record's
line for file tails, a monotone record count for socket streams and
adapted in-memory sources.

A byte offset alone cannot tell *which file* it refers to: a log
rotated to a fresh file of the same (or larger) size, or rewritten in
place, would accept a stale offset and resume mid-way through
unrelated content.  Sources that can identify their backing file
therefore store a **file signature** next to the offset — inode/device
plus a hash of the file's first bytes (see
:meth:`~repro.ingest.sources.FileTailSource.signature`).  On resume
the source compares signatures: an inode change is a rotation, a
same-inode head-hash change is an in-place rewrite/truncation, and
either restarts tailing from the top instead of trusting the stale
offset.  Checkpoints written before signatures existed (plain integer
values) still load and resume by offset alone.

Multi-tenant deployments share one store across N per-tenant
pipelines.  Keys used to be bare source names, so two tenants tailing
identically-named sources (every tenant calls its app log ``app.log``)
would clobber each other's offsets; :meth:`CheckpointStore.namespaced`
returns a per-tenant view that prefixes every key with the namespace,
keeping entries disjoint inside one file.  The store is also
thread-safe: the gateway's tenant services commit from executor
threads concurrently.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from pathlib import Path


class OffsetTracker:
    """Commit the highest contiguous processed offset of one source.

    ``note_read`` records offsets in the order the source emitted them
    (sources emit sequentially, so this order is the resume order);
    ``note_processed`` marks an offset's record as fully processed by
    the pipeline.  :attr:`committed` advances only while the *oldest*
    outstanding read offset is processed — offsets processed out of
    order (batches assembled across the merge's reordering) wait until
    the gap before them closes.

    A read offset lower than its predecessor signals that the source
    restarted its numbering (file rotation/truncation).  Outstanding
    state from before the regression is discarded — those offsets
    belong to a file that no longer exists — and commitment restarts
    in the new numbering.
    """

    def __init__(self, committed: int = 0) -> None:
        self.committed = committed
        self._outstanding: deque[int] = deque()
        self._processed: set[int] = set()

    @property
    def outstanding(self) -> int:
        """Read-but-not-yet-committed offsets."""
        return len(self._outstanding)

    def note_read(self, offset: int) -> None:
        if self._outstanding and offset <= self._outstanding[-1]:
            # Offset regression: the source re-numbered (rotation).
            self._outstanding.clear()
            self._processed.clear()
            self.committed = 0
        self._outstanding.append(offset)

    def note_processed(self, offset: int) -> None:
        if not self._outstanding or offset < self._outstanding[0]:
            # Pre-regression stragglers: their file is gone; ignore.
            return
        self._processed.add(offset)
        while self._outstanding and self._outstanding[0] in self._processed:
            self.committed = self._outstanding.popleft()
            self._processed.discard(self.committed)


class CheckpointStore:
    """Atomic JSON persistence of per-source committed offsets.

    Entry format on disk: a plain integer (offset only — the legacy
    layout, still written for signature-less sources) or an object
    ``{"offset": N, "signature": {...}}`` when the source supplied a
    file signature with its last commit.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._offsets: dict[str, int] = {}
        self._signatures: dict[str, dict] = {}
        self._dirty = False
        self._lock = threading.Lock()
        self._save_lock = threading.Lock()
        if self.path.exists():
            try:
                loaded = json.loads(self.path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as error:
                raise ValueError(
                    f"unreadable checkpoint file {self.path}: {error}"
                ) from error
            if not isinstance(loaded, dict):
                raise ValueError(
                    f"checkpoint file {self.path} must hold a JSON object"
                )
            for name, entry in loaded.items():
                if isinstance(entry, dict):
                    self._offsets[str(name)] = int(entry.get("offset", 0))
                    signature = entry.get("signature")
                    if isinstance(signature, dict):
                        self._signatures[str(name)] = signature
                else:
                    self._offsets[str(name)] = int(entry)

    def get(self, source: str) -> int:
        """Committed offset for ``source`` (0 when never checkpointed)."""
        with self._lock:
            return self._offsets.get(source, 0)

    def get_signature(self, source: str) -> dict | None:
        """The file signature stored with the offset, if any."""
        with self._lock:
            return self._signatures.get(source)

    def update(self, source: str, offset: int,
               signature: dict | None = None) -> None:
        """Record a new committed offset (no-op unless something changed).

        ``signature=None`` means "no identity available right now" —
        e.g. the tailed file is mid-rotation — not "forget the
        identity": the stored signature is kept, so a commit that
        lands in the rotation window cannot silently disable the
        stale-offset protection for the next resume.
        """
        with self._lock:
            changed = self._offsets.get(source, 0) != offset
            if (signature is not None
                    and self._signatures.get(source) != signature):
                self._signatures[source] = signature
                changed = True
            if changed:
                self._offsets[source] = offset
                self._dirty = True

    def namespaced(self, namespace: str) -> "NamespacedCheckpoints":
        """A view of this store scoped to one tenant/pipeline.

        Entries commit under ``"<namespace>/<source>"``, so views with
        distinct namespaces never collide even when their sources share
        names.  Namespaces themselves may not contain ``/``.
        """
        return NamespacedCheckpoints(self, namespace)

    def save(self) -> None:
        """Persist atomically; cheap no-op when nothing changed."""
        # _save_lock serializes whole writes (concurrent savers would
        # race on the shared temp name); _lock guards the in-memory
        # state just long enough to snapshot it, so committers are
        # never blocked behind an fsync.
        with self._save_lock:
            with self._lock:
                if not self._dirty:
                    return
                payload: dict[str, object] = {}
                for name, offset in self._offsets.items():
                    signature = self._signatures.get(name)
                    payload[name] = (
                        offset if signature is None
                        else {"offset": offset, "signature": signature}
                    )
                self._dirty = False
            temporary = self.path.with_name(self.path.name + ".tmp")
            # Atomicity needs more than temp-file + rename: without an
            # fsync of the data before the rename, a crash can promote
            # an empty/truncated temp file over the good checkpoint;
            # without an fsync of the directory after it, the rename
            # itself may not survive — either way "resume never
            # re-emits" breaks.
            with open(temporary, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, indent=0, sort_keys=True))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, self.path)
            try:
                directory = os.open(self.path.parent, os.O_RDONLY)
            except OSError:
                # Directory fds are not universally openable (some
                # platforms/filesystems); the data fsync above still
                # bounds the damage to losing the rename, never the
                # data.
                pass
            else:
                try:
                    os.fsync(directory)
                except OSError:
                    pass
                finally:
                    os.close(directory)


class NamespacedCheckpoints:
    """A per-tenant/pipeline view of a shared :class:`CheckpointStore`.

    Presents the same ``get``/``get_signature``/``update``/``save``
    surface the ingestion service expects, but commits every entry
    under ``"<namespace>/<source>"`` — so N views over one store keep
    their offsets disjoint even when tenants name their sources
    identically.  Legacy un-namespaced keys in the same file are
    untouched.
    """

    def __init__(self, store: CheckpointStore, namespace: str) -> None:
        if not namespace or "/" in namespace:
            raise ValueError(
                f"namespace must be non-empty and '/'-free, got {namespace!r}")
        self.store = store
        self.namespace = namespace

    def _key(self, source: str) -> str:
        return f"{self.namespace}/{source}"

    def get(self, source: str) -> int:
        return self.store.get(self._key(source))

    def get_signature(self, source: str) -> dict | None:
        return self.store.get_signature(self._key(source))

    def update(self, source: str, offset: int,
               signature: dict | None = None) -> None:
        self.store.update(self._key(source), offset, signature)

    def save(self) -> None:
        self.store.save()
