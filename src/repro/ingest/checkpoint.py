"""Per-source offset checkpoints: resume ingestion without replay.

A restarted ``tail`` must pick up where the previous process stopped
— re-emitting already-processed records would re-alert on sessions the
operator has already seen.  Two pieces cooperate:

* :class:`OffsetTracker` — per-source bookkeeping of which offsets
  have been *read* versus *processed*.  Because the merge stage
  reorders records across (and, for out-of-order timestamps, within)
  sources, a batch finishing does not mean every earlier offset of its
  sources was processed; the tracker therefore commits only the
  highest **contiguous** processed offset, exactly the position a
  restart may safely resume from.
* :class:`CheckpointStore` — a small JSON file mapping source name to
  committed offset, written atomically (temp file + ``os.replace``) so
  an interruption mid-save can never leave a torn checkpoint behind.

Offset semantics are per source kind: byte position after the record's
line for file tails, a monotone record count for socket streams and
adapted in-memory sources.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path


class OffsetTracker:
    """Commit the highest contiguous processed offset of one source.

    ``note_read`` records offsets in the order the source emitted them
    (sources emit sequentially, so this order is the resume order);
    ``note_processed`` marks an offset's record as fully processed by
    the pipeline.  :attr:`committed` advances only while the *oldest*
    outstanding read offset is processed — offsets processed out of
    order (batches assembled across the merge's reordering) wait until
    the gap before them closes.

    A read offset lower than its predecessor signals that the source
    restarted its numbering (file rotation/truncation).  Outstanding
    state from before the regression is discarded — those offsets
    belong to a file that no longer exists — and commitment restarts
    in the new numbering.
    """

    def __init__(self, committed: int = 0) -> None:
        self.committed = committed
        self._outstanding: deque[int] = deque()
        self._processed: set[int] = set()

    @property
    def outstanding(self) -> int:
        """Read-but-not-yet-committed offsets."""
        return len(self._outstanding)

    def note_read(self, offset: int) -> None:
        if self._outstanding and offset <= self._outstanding[-1]:
            # Offset regression: the source re-numbered (rotation).
            self._outstanding.clear()
            self._processed.clear()
            self.committed = 0
        self._outstanding.append(offset)

    def note_processed(self, offset: int) -> None:
        if not self._outstanding or offset < self._outstanding[0]:
            # Pre-regression stragglers: their file is gone; ignore.
            return
        self._processed.add(offset)
        while self._outstanding and self._outstanding[0] in self._processed:
            self.committed = self._outstanding.popleft()
            self._processed.discard(self.committed)


class CheckpointStore:
    """Atomic JSON persistence of per-source committed offsets."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._offsets: dict[str, int] = {}
        self._dirty = False
        if self.path.exists():
            try:
                loaded = json.loads(self.path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as error:
                raise ValueError(
                    f"unreadable checkpoint file {self.path}: {error}"
                ) from error
            if not isinstance(loaded, dict):
                raise ValueError(
                    f"checkpoint file {self.path} must hold a JSON object"
                )
            self._offsets = {str(name): int(offset)
                             for name, offset in loaded.items()}

    def get(self, source: str) -> int:
        """Committed offset for ``source`` (0 when never checkpointed)."""
        return self._offsets.get(source, 0)

    def update(self, source: str, offset: int) -> None:
        """Record a new committed offset (no-op unless it advanced)."""
        if self._offsets.get(source, 0) != offset:
            self._offsets[source] = offset
            self._dirty = True

    def save(self) -> None:
        """Persist atomically; cheap no-op when nothing changed."""
        if not self._dirty:
            return
        temporary = self.path.with_name(self.path.name + ".tmp")
        temporary.write_text(
            json.dumps(self._offsets, indent=0, sort_keys=True),
            encoding="utf-8",
        )
        os.replace(temporary, self.path)
        self._dirty = False
