"""Async multi-source ingestion with back-pressure (live front-end).

The offline pipeline consumes pre-materialized record lists; this
package is the live front door: tail N files and sockets concurrently,
merge them with watermark-based bounded lateness, group the merged
stream into micro-batches, and feed a trained streaming pipeline under
credit-based back-pressure — with per-source offset checkpoints so a
restarted ingestor resumes without re-emitting processed records.

Entry point: build :class:`IngestService` over some
:class:`AsyncLogSource`\\ s and ``await service.run()``.  The ``tail``
CLI command wraps exactly that.
"""

from repro.ingest.backpressure import CreditGate
from repro.ingest.batcher import MicroBatcher
from repro.ingest.checkpoint import (
    CheckpointStore,
    NamespacedCheckpoints,
    OffsetTracker,
)
from repro.ingest.merge import BoundedLatenessMerger
from repro.ingest.service import IngestService, IngestStats
from repro.ingest.sources import (
    AsyncLogSource,
    AsyncSourceAdapter,
    FileTailSource,
    SocketSource,
    SourceItem,
    client_tls_context,
    encode_frame,
    render_framed_record,
    render_json_line,
)

__all__ = [
    "AsyncLogSource",
    "AsyncSourceAdapter",
    "BoundedLatenessMerger",
    "CheckpointStore",
    "CreditGate",
    "FileTailSource",
    "IngestService",
    "IngestStats",
    "MicroBatcher",
    "NamespacedCheckpoints",
    "OffsetTracker",
    "SocketSource",
    "SourceItem",
    "client_tls_context",
    "encode_frame",
    "render_framed_record",
    "render_json_line",
]
