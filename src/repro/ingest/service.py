"""The ingestion service: readers → merge → batcher → pipeline.

:class:`IngestService` is the asyncio front-end that turns N live
sources into one back-pressured micro-batch stream feeding a trained
streaming pipeline:

1. one **reader task** per source pulls :class:`SourceItem`\\ s,
   acquiring a credit per record (:class:`CreditGate`) so the whole
   front-end's memory stays bounded by the credit budget;
2. arrivals feed the **watermark merge**
   (:class:`BoundedLatenessMerger`), which restores cross-source
   timestamp order up to the configured lateness budget;
3. released records group in the **micro-batcher**, flushing on size
   or age;
4. full batches hand off to the pipeline via
   :class:`~repro.core.streaming.BatchHandoff` — scoring runs *off*
   the event loop (``run_in_executor``) so parse/detect CPU never
   blocks the readers — and completed batches release their credits
   and advance the per-source offset checkpoints.

Shutdown is lossless by construction: :meth:`stop` (or source
exhaustion) cancels the readers, then everything already read — queued
arrivals, merge buffer, open batch — flushes through the pipeline
before the final checkpoint save, so cancellation never drops a
record that cost a credit.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.config import IngestConfig
from repro.core.reports import ClassifiedAlert
from repro.core.streaming import BatchHandoff
from repro.ingest.backpressure import CreditGate
from repro.ingest.batcher import MicroBatcher
from repro.ingest.checkpoint import (
    CheckpointStore,
    NamespacedCheckpoints,
    OffsetTracker,
)
from repro.ingest.merge import BoundedLatenessMerger
from repro.ingest.sources import AsyncLogSource, SourceItem
from repro.telemetry.metrics import RateMeter

#: Sliding-window width (seconds) of the per-source arrival meters
#: when no telemetry config supplies one.
_DEFAULT_RATE_WINDOW = 5.0


@dataclass(frozen=True)
class IngestStats:
    """A consistent snapshot of the front-end's counters."""

    records_in: dict[str, int]
    records_processed: int
    batches: int
    size_flushes: int
    age_flushes: int
    forced_drains: int
    late_records: int
    merge_pending: int
    batch_pending: int
    credit_waits: int
    credits_in_use: int
    peak_depth: int
    alerts: int
    committed: dict[str, int]
    #: Per-source arrival rates (records/second over a sliding
    #: window) — the signal the autoscaler sizes batches from.
    arrival_rates: dict[str, float] = field(default_factory=dict)
    #: Cumulative seconds producers spent blocked on the credit gate.
    credit_wait_seconds: float = 0.0
    #: The autoscale controller's status, when one is attached.
    autoscale: dict | None = None

    def summary(self) -> str:
        """Multi-line human-readable summary (the ``tail`` epilogue)."""
        per_source = ", ".join(
            f"{name}={count}" for name, count in sorted(self.records_in.items())
        ) or "none"
        text = (
            f"ingested {self.records_processed} records "
            f"({per_source}) in {self.batches} batches "
            f"({self.size_flushes} size / {self.age_flushes} age / "
            f"{self.forced_drains} forced), {self.alerts} alerts\n"
            f"late records: {self.late_records}, credit waits: "
            f"{self.credit_waits}, peak pipeline depth: {self.peak_depth}"
        )
        if self.autoscale is not None:
            knobs = ", ".join(
                f"{knob}={value:g}"
                for knob, value in sorted(self.autoscale["knobs"].items())
            )
            text += (
                f"\nautoscale: {self.autoscale['ticks']} ticks, "
                f"{len(self.autoscale['adjustments'])} recent adjustments"
                f" ({knobs})"
            )
        return text


@dataclass
class _ReaderDone:
    """Sentinel a reader enqueues when its source ends (or is cancelled)."""

    source: str
    error: BaseException | None = field(default=None)


class IngestService:
    """Orchestrate live sources into a streaming MoniLog pipeline.

    Args:
        sources: the live inputs; names must be unique (they key the
            stats and checkpoints).
        pipeline: a trained streaming façade
            (:class:`~repro.core.streaming.StreamingMoniLog` or
            :class:`~repro.core.streaming.StreamingShardedMoniLog`) —
            anything with ``process_batch(records) -> alerts`` and
            optionally ``flush()``; it is wrapped in a
            :class:`~repro.core.streaming.BatchHandoff` unless one is
            passed directly.
        config: front-end knobs; see
            :class:`~repro.core.config.IngestConfig`.
        checkpoint: optional offset store — a
            :class:`~repro.ingest.checkpoint.CheckpointStore`, or a
            :class:`~repro.ingest.checkpoint.NamespacedCheckpoints`
            view when several services (the gateway's per-tenant
            pipelines) share one file; when given, sources resume
            after their last committed offset and commits advance as
            batches complete.
        on_alert: optional callback invoked per alert, in order, from
            the event loop (live delivery); alerts are also collected
            and returned by :meth:`run`.
        telemetry: optional
            :class:`~repro.telemetry.instrument.PipelineTelemetry`;
            the service attaches its pull-collectors (arrival rates,
            gate accounting, merge/batcher depths) and observes batch
            sizes.  ``Pipeline.serve()`` passes the pipeline's own.
        autoscale: optional
            :class:`~repro.autoscale.controller.AutoscaleController`;
            bound to this service and ticked from the run loop, it
            adjusts the credit budget and micro-batch knobs live.
        tracer: optional :class:`~repro.telemetry.tracing.Tracer` (the
            pipeline's); the service registers checkpoint offsets for
            alert provenance and roots sampled ``ingest`` traces that
            the pipeline's batch spans join.
        health: optional
            :class:`~repro.telemetry.tracing.HealthMonitor`; the run
            loop heartbeats an ``ingest`` probe every iteration and
            each source contributes a ``source:<name>`` pull check
            (``/readyz`` sees flapping sockets and vanished files).
        probe_scope: prefix for probe names on a shared monitor (the
            gateway passes ``"<tenant>."``).

    One service instance supports one :meth:`run`.
    """

    def __init__(
        self,
        sources: Sequence[AsyncLogSource],
        pipeline,
        *,
        config: IngestConfig | None = None,
        checkpoint: CheckpointStore | NamespacedCheckpoints | None = None,
        on_alert: Callable[[ClassifiedAlert], None] | None = None,
        telemetry=None,
        autoscale=None,
        tracer=None,
        health=None,
        probe_scope: str = "",
    ) -> None:
        self.sources = list(sources)
        if not self.sources:
            raise ValueError("IngestService needs at least one source")
        names = [source.name for source in self.sources]
        if len(set(names)) != len(names):
            raise ValueError(f"source names must be unique, got {names}")
        self.config = config or IngestConfig()
        self._sources_by_name = {source.name: source
                                 for source in self.sources}
        self.handoff = (pipeline if isinstance(pipeline, BatchHandoff)
                        else BatchHandoff(pipeline))
        self.checkpoint = checkpoint
        self.on_alert = on_alert
        self.gate = CreditGate(self.config.credits)
        self.merger = BoundedLatenessMerger(self.config.lateness)
        self.batcher = MicroBatcher(self.config.batch_size,
                                    self.config.max_batch_age)
        self.alerts: list[ClassifiedAlert] = []
        self.forced_drains = 0
        self._records_in: dict[str, int] = {name: 0 for name in names}
        rate_window = (telemetry.config.rate_window
                       if telemetry is not None else _DEFAULT_RATE_WINDOW)
        #: Per-source arrival meters — always on (a few arithmetic ops
        #: per record) so ``stats()`` reports rates with or without
        #: telemetry, and the autoscaler always has its input signal.
        self.meters: dict[str, RateMeter] = {
            name: RateMeter(rate_window) for name in names
        }
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.attach_ingest(self)
            telemetry.attach_handoff(self.handoff)
        self.autoscale = autoscale.bind(self) if autoscale is not None \
            else None
        self.tracer = tracer
        self.health = health
        self._probe = f"{probe_scope}ingest"
        if health is not None:
            for source in self.sources:
                health.check(
                    f"{probe_scope}source:{source.name}",
                    # Bind per iteration; `healthy` is a live property.
                    (lambda src=source: src.healthy),
                )
        self._trackers: dict[str, OffsetTracker] = {}
        self._stop = asyncio.Event()
        self._started = False
        self._reader_error: BaseException | None = None

    # -- control ---------------------------------------------------------------

    def stop(self) -> None:
        """Request a clean shutdown: drain what was read, then return.

        Safe to call from a signal handler on the event-loop thread or
        from any coroutine; idempotent.
        """
        self._stop.set()

    def stats(self) -> IngestStats:
        """Snapshot the front-end's counters (cheap; callable any time)."""
        now = time.monotonic()
        return IngestStats(
            records_in=dict(self._records_in),
            records_processed=self.handoff.records,
            batches=self.handoff.batches,
            size_flushes=self.batcher.size_flushes,
            age_flushes=self.batcher.age_flushes,
            forced_drains=self.forced_drains,
            late_records=self.merger.late,
            merge_pending=self.merger.pending,
            batch_pending=self.batcher.pending,
            credit_waits=self.gate.waits,
            credits_in_use=self.gate.in_use,
            peak_depth=self.handoff.peak_depth,
            alerts=len(self.alerts),
            committed={name: tracker.committed
                       for name, tracker in self._trackers.items()},
            arrival_rates={name: meter.rate(now)
                           for name, meter in self.meters.items()},
            credit_wait_seconds=self.gate.wait_seconds,
            autoscale=self.autoscale.status()
            if self.autoscale is not None else None,
        )

    # -- the run loop ----------------------------------------------------------

    async def run(self) -> list[ClassifiedAlert]:
        """Ingest until every source ends or :meth:`stop` is called.

        Returns every alert the pipeline produced, in delivery order
        (the same list ``on_alert`` saw entry by entry).
        """
        if self._started:
            raise RuntimeError("IngestService.run() supports a single run")
        self._started = True
        arrivals: asyncio.Queue = asyncio.Queue()
        readers: list[asyncio.Task] = []
        for source in self.sources:
            start = self.checkpoint.get(source.name) if self.checkpoint else 0
            if self.checkpoint is not None and start:
                # Let the source veto a stale offset: a rotated or
                # rewritten file fails its stored signature and tails
                # from the top instead of resuming mid-file.
                start = source.resume_offset(
                    start, self.checkpoint.get_signature(source.name)
                )
            tracker = OffsetTracker(start)
            self._trackers[source.name] = tracker
            readers.append(asyncio.get_running_loop().create_task(
                self._read(source, tracker, arrivals),
            ))
        stop_wait = asyncio.ensure_future(self._stop.wait())
        pending_get: asyncio.Future | None = None
        live = len(readers)
        if self.health is not None:
            self.health.beat(self._probe)
        try:
            while live > 0 and not self._stop.is_set():
                if self.health is not None:
                    self.health.beat(self._probe)
                if pending_get is None:
                    pending_get = asyncio.ensure_future(arrivals.get())
                done, _ = await asyncio.wait(
                    {pending_get, stop_wait},
                    timeout=self._poll_timeout(),
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if pending_get in done:
                    message = pending_get.result()
                    pending_get = None
                    if isinstance(message, _ReaderDone):
                        live -= 1
                        if message.error is not None:
                            raise message.error
                    else:
                        await self._ingest(message)
                if not done:
                    await self._on_idle()
                if self.autoscale is not None:
                    self.autoscale.maybe_tick(time.monotonic())
        except asyncio.CancelledError:
            # Hard cancellation of run() itself: treat like stop() and
            # make a best effort to flush before propagating.
            self._stop.set()
            raise
        finally:
            for task in readers:
                task.cancel()
            await asyncio.gather(*readers, return_exceptions=True)
            stop_wait.cancel()
            if pending_get is not None:
                if pending_get.done() and not pending_get.cancelled():
                    arrivals.put_nowait(pending_get.result())
                else:
                    pending_get.cancel()
            await self._drain_and_flush(arrivals)
        if self._reader_error is not None:
            # A source died in the same instant stop() fired: its
            # sentinel reached the shutdown drain instead of the main
            # loop.  Everything read was flushed above; now surface
            # the failure instead of reporting success.
            raise self._reader_error
        return self.alerts

    def _poll_timeout(self) -> float | None:
        """How long the main loop may sleep before housekeeping.

        Bounded by the open batch's age deadline, and by the poll
        interval whenever the merge holds items while credits are
        exhausted — the situation only a forced drain can unstick.
        """
        timeout: float | None = None
        deadline = self.batcher.deadline
        if deadline is not None:
            timeout = max(0.0, deadline - time.monotonic())
        if self.merger.pending and self.gate.available <= 0:
            poll = self.config.poll_interval
            timeout = poll if timeout is None else min(timeout, poll)
        if self.autoscale is not None:
            # Never sleep through a control tick: a mis-sized start
            # (credits=1 on a quiet merge) otherwise waits out the full
            # poll cadence between every correction.
            interval = self.autoscale.config.interval
            timeout = interval if timeout is None else min(timeout, interval)
        if self.health is not None:
            # Keep the heartbeat fresher than the staleness budget even
            # on an idle stream — an unbounded sleep would read as a
            # wedged loop on /readyz.
            beat = self.health.stale_after / 3
            timeout = beat if timeout is None else min(timeout, beat)
        return timeout

    async def _on_idle(self) -> None:
        """Housekeeping when the poll timeout fires with no arrivals."""
        batch = self.batcher.poll(time.monotonic())
        if batch is not None:
            await self._process(batch)
        if self.merger.pending and self.gate.available <= 0:
            # Every credit is parked behind the watermark and no new
            # arrival can advance it: credit pressure overrides
            # lateness.  Drain the oldest buffered records so the
            # pipeline (and the credit pool) keep moving.  The batch
            # bound is the *live* one — the autoscaler may have moved
            # it since construction.
            self.forced_drains += 1
            for item in self.merger.drain_oldest(self.batcher.max_size):
                await self._add_to_batch(item)

    async def _read(self, source: AsyncLogSource, tracker: OffsetTracker,
                    arrivals: asyncio.Queue) -> None:
        """One source's reader: credit, track, enqueue; sentinel at end."""
        error: BaseException | None = None
        meter = self.meters[source.name]
        try:
            async for item in source.items(start_offset=tracker.committed):
                await self.gate.acquire()
                tracker.note_read(item.offset)
                self._records_in[source.name] += 1
                meter.mark(1, time.monotonic())
                arrivals.put_nowait(item)
        except asyncio.CancelledError:
            pass  # stop(): unread source data stays unread, by design
        except Exception as failure:  # surface reader bugs, don't hang
            error = failure
        finally:
            arrivals.put_nowait(_ReaderDone(source.name, error))

    async def _ingest(self, item: SourceItem) -> None:
        """One arrival: merge, then batch whatever the watermark freed."""
        for ready in self.merger.push(item):
            await self._add_to_batch(ready)

    async def _add_to_batch(self, item: SourceItem) -> None:
        batch = self.batcher.add(item, time.monotonic())
        if batch is not None:
            await self._process(batch)

    async def _process(self, batch: list[SourceItem]) -> None:
        """Score one batch off the loop; then commit, release, deliver."""
        loop = asyncio.get_running_loop()
        records = [item.record for item in batch]
        if self.telemetry is not None:
            self.telemetry.observe_ingest_batch(len(records))
        if self.tracer is not None:
            # Offsets feed alert provenance for *every* batch; the
            # sampled ingest trace (source read + merge attribution) is
            # adopted by the pipeline's batch span inside the executor
            # thread.  hand_off also records a negative decision so the
            # pipeline never draws a second sample for this batch.
            self.tracer.note_offsets(batch)
            ctx = self.tracer.begin("ingest", records=len(batch))
            if ctx is not None:
                offsets_by_source: dict[str, list[int]] = {}
                for item in batch:
                    offsets_by_source.setdefault(
                        item.source, []).append(item.offset)
                for name, offsets in offsets_by_source.items():
                    ctx.event("source.read", source=name,
                              records=len(offsets),
                              first_offset=min(offsets),
                              last_offset=max(offsets))
                ctx.event("merge", pending=self.merger.pending,
                          late=self.merger.late)
            self.tracer.hand_off(ctx)
        alerts = await loop.run_in_executor(None, self.handoff.submit, records)
        for item in batch:
            self._trackers[item.source].note_processed(item.offset)
        if self.checkpoint is not None:
            # Snapshot the commit positions on the loop (cheap), then
            # do all the file I/O — signature stat/reads and the
            # checkpoint write — off the loop, so slow storage never
            # stalls the readers.  One service processes batches one
            # at a time, but N gateway services may share the store —
            # it serializes concurrent commits internally.
            committed = {name: tracker.committed
                         for name, tracker in self._trackers.items()}

            def _commit() -> None:
                for name, offset in committed.items():
                    self.checkpoint.update(
                        name, offset,
                        self._sources_by_name[name].signature(),
                    )
                self.checkpoint.save()

            await loop.run_in_executor(None, _commit)
        self.gate.release(len(batch))
        self._deliver(alerts)

    def _deliver(self, alerts: list[ClassifiedAlert]) -> None:
        for alert in alerts:
            self.alerts.append(alert)
            if self.on_alert is not None:
                self.on_alert(alert)

    async def _drain_and_flush(self, arrivals: asyncio.Queue) -> None:
        """Lossless shutdown: everything read must reach the pipeline."""
        while True:
            try:
                message = arrivals.get_nowait()
            except asyncio.QueueEmpty:
                break
            if isinstance(message, _ReaderDone):
                if message.error is not None and self._reader_error is None:
                    self._reader_error = message.error
            else:
                await self._ingest(message)
        for item in self.merger.flush():
            await self._add_to_batch(item)
        batch = self.batcher.flush()
        if batch is not None:
            await self._process(batch)
        loop = asyncio.get_running_loop()
        self._deliver(await loop.run_in_executor(None, self.handoff.flush))
        if self.checkpoint is not None:
            self.checkpoint.save()
