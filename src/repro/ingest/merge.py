"""Watermark-based bounded-lateness merge of live source streams.

The offline merge (:func:`repro.logs.stream.interleave`) requires
finite, already-available iterators: it holds one pending record per
source and always knows which source owns the globally-oldest record.
Live sources break that model — a tailed file that is momentarily
quiet must not stall the merged stream, and a source read over slow
storage delivers its records *after* faster peers have already moved
the stream forward.

:class:`BoundedLatenessMerger` is the live replacement.  It buffers
arriving items in a heap and tracks the stream's **high-water event
time** (the maximum timestamp seen across all sources).  Items are
released once the *watermark* — high water minus a configurable
``lateness`` budget — passes them, in timestamp order.  The lateness
budget is therefore the out-of-order tolerance: arrival skew between
sources up to ``lateness`` seconds of event time is reordered
perfectly; items arriving even later than that are **never dropped**
(MoniLog's robustness stance) — they are counted in ``late`` and
released immediately, joining the stream where it currently is.

The merger is deliberately synchronous and loop-free: the async
ingestion service drives it by calling :meth:`push` per arriving item
and :meth:`flush` at shutdown, which keeps the ordering policy
unit-testable without an event loop.  Ties on equal timestamps break
by arrival order, so each source's records stay FIFO relative to each
other — the same per-source contract :func:`interleave` honors.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.ingest.sources import SourceItem


class BoundedLatenessMerger:
    """K-way merge of live streams with bounded out-of-order tolerance.

    Args:
        lateness: out-of-order budget in seconds of event time.  ``0``
            buffers nothing — every item releases on arrival (pure
            arrival-order passthrough); larger budgets buffer more but
            reorder deeper arrival skew.
    """

    def __init__(self, lateness: float = 0.0) -> None:
        if lateness < 0:
            raise ValueError(f"lateness must be >= 0, got {lateness}")
        self.lateness = lateness
        self._heap: list[tuple[float, int, "SourceItem"]] = []
        self._arrivals = 0
        self._high_water = float("-inf")
        self.emitted = 0
        self.late = 0

    @property
    def high_water(self) -> float:
        """Maximum event timestamp seen so far."""
        return self._high_water

    @property
    def watermark(self) -> float:
        """Event time up to which the stream is considered complete."""
        return self._high_water - self.lateness

    @property
    def pending(self) -> int:
        """Items buffered awaiting the watermark."""
        return len(self._heap)

    def push(self, item: "SourceItem") -> list["SourceItem"]:
        """Buffer one arriving item; return everything now releasable.

        Returns the (possibly empty) list of items whose timestamps the
        advancing watermark has passed, oldest first.
        """
        timestamp = item.record.timestamp
        if self._arrivals and timestamp < self.watermark:
            # Arrived beyond the lateness budget: counted, not dropped.
            self.late += 1
        self._high_water = max(self._high_water, timestamp)
        heapq.heappush(self._heap, (timestamp, self._arrivals, item))
        self._arrivals += 1
        return self._release(self.watermark)

    def drain_oldest(self, count: int) -> list["SourceItem"]:
        """Force-release up to ``count`` buffered items, oldest first.

        The escape hatch for credit pressure: when every credit is held
        by items parked behind the watermark (quiet sources stop the
        high water from advancing), the service drains the oldest
        buffered items so the pipeline — and with it the credit pool —
        keeps moving.  Ordering within the drained prefix is still by
        timestamp.
        """
        out: list["SourceItem"] = []
        while self._heap and len(out) < count:
            out.append(heapq.heappop(self._heap)[2])
        self.emitted += len(out)
        return out

    def flush(self) -> list["SourceItem"]:
        """Release everything still buffered (stream shutdown)."""
        return self._release(float("inf"))

    def _release(self, limit: float) -> list["SourceItem"]:
        out: list["SourceItem"] = []
        while self._heap and self._heap[0][0] <= limit:
            out.append(heapq.heappop(self._heap)[2])
        self.emitted += len(out)
        return out
