"""Micro-batch assembly: flush on size *or* age, whichever hits first.

The streaming pipeline's amortized entry point is
``process_batch(records)`` — per-record hand-off would forfeit the
template cache and intra-batch dedup that make the parse stage cheap.
But a live stream cannot wait for a full batch either: a trickle
source would sit on its records indefinitely.  :class:`MicroBatcher`
holds the standard compromise: a batch flushes when it reaches
``max_size`` records or when its oldest record has waited
``max_batch_age`` seconds of wall clock, whichever comes first.

Like the merger, the batcher is synchronous and clock-explicit (every
mutating call takes ``now``): the async service supplies
``time.monotonic()`` and uses :attr:`deadline` to size its poll
timeout, and tests drive the age policy with a fake clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.ingest.sources import SourceItem


class MicroBatcher:
    """Group items into batches bounded by size and by age.

    Args:
        max_size: flush as soon as a batch holds this many items.
        max_age: flush a non-empty batch once its first item is this
            many seconds old (wall clock, supplied by the caller).
    """

    def __init__(self, max_size: int, max_age: float) -> None:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        if max_age <= 0:
            raise ValueError(f"max_age must be > 0, got {max_age}")
        self.max_size = max_size
        self.max_age = max_age
        self._items: list["SourceItem"] = []
        self._opened_at: float | None = None
        self.size_flushes = 0
        self.age_flushes = 0

    def configure(self, max_size: int | None = None,
                  max_age: float | None = None) -> None:
        """Adjust the flush bounds at runtime (autoscale's knobs).

        Takes effect from the next :meth:`add`/:meth:`poll`: an open
        batch already larger than a shrunken ``max_size`` flushes on
        its next addition, and the age deadline moves with ``max_age``
        (the batcher re-derives it from the open batch's start time).
        Changing bounds never reorders or drops items — batch
        boundaries are output-neutral by the streaming invariants.
        """
        if max_size is not None:
            if max_size < 1:
                raise ValueError(f"max_size must be >= 1, got {max_size}")
            self.max_size = max_size
        if max_age is not None:
            if max_age <= 0:
                raise ValueError(f"max_age must be > 0, got {max_age}")
            self.max_age = max_age

    @property
    def pending(self) -> int:
        """Items waiting in the open batch."""
        return len(self._items)

    @property
    def deadline(self) -> float | None:
        """Wall-clock instant the open batch must flush by (None: empty)."""
        if self._opened_at is None:
            return None
        return self._opened_at + self.max_age

    def add(self, item: "SourceItem", now: float) -> list["SourceItem"] | None:
        """Add one item; return the batch if this addition filled it."""
        if self._opened_at is None:
            self._opened_at = now
        self._items.append(item)
        if len(self._items) >= self.max_size:
            self.size_flushes += 1
            return self._take()
        return None

    def poll(self, now: float) -> list["SourceItem"] | None:
        """Return the open batch if it has aged out, else ``None``."""
        if self._opened_at is not None and now - self._opened_at >= self.max_age:
            self.age_flushes += 1
            return self._take()
        return None

    def flush(self) -> list["SourceItem"] | None:
        """Return whatever is open, regardless of size or age (shutdown)."""
        if not self._items:
            return None
        return self._take()

    def _take(self) -> list["SourceItem"]:
        batch = self._items
        self._items = []
        self._opened_at = None
        return batch
