"""Credit-based flow control for the ingestion front-end.

MoniLog's input model is many live sources feeding one analysis
stream; a single slow consumer (the streaming pipeline scoring off the
event loop) must be able to slow *every* producer down, or fast
sources overrun the process with buffered records.  The classic
mechanism is credits: each record occupies one credit from the moment
its reader emits it until the pipeline has fully processed the batch
containing it.  When credits run out, readers block in
:meth:`CreditGate.acquire` — back-pressure propagates to the tail
loops and socket reads themselves, bounding end-to-end memory by the
credit budget however unbalanced the source rates are.

The gate is a plain asyncio primitive (single event loop, no locks):
``acquire`` is awaitable and FIFO-fair, ``release`` is synchronous so
completion paths — including executor-thread callbacks marshalled via
``call_soon_threadsafe`` — can hand credits back without awaiting.

Tenant isolation in the multi-tenant gateway builds directly on this:
every per-tenant ingestion service owns its *own* gate (sized by its
tenant's ``credits`` budget), so a noisy tenant exhausting its credits
stalls only its own readers — the other tenants' gates, and therefore
their end-to-end latency, never see the pressure (docs/gateway.md).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque


class CreditGate:
    """An async counting gate with FIFO hand-off and wait accounting.

    ``capacity`` is the total credit budget.  :meth:`acquire` takes
    credits, blocking while the gate is exhausted; :meth:`release`
    returns them and wakes waiters in arrival order.  ``waits`` counts
    the times a producer actually had to block and ``wait_seconds``
    accumulates how long they blocked — the two signals that
    back-pressure engaged, which the ingestion stats (and the
    telemetry layer's credit-wait metrics) surface.

    The budget is **resizable at runtime** (:meth:`resize`): the
    autoscale controller grows it when producers block and decays it
    when credits sit idle.  Shrinking below the credits currently in
    use is safe — ``available`` simply goes negative until in-flight
    records complete, which is exactly the bounded-overshoot behavior
    a live resize needs (nothing already read is ever dropped).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._available = capacity
        self._waiters: deque[tuple[int, asyncio.Future]] = deque()
        self.waits = 0
        self.wait_seconds = 0.0

    @property
    def available(self) -> int:
        return self._available

    @property
    def in_use(self) -> int:
        return self.capacity - self._available

    async def acquire(self, amount: int = 1) -> None:
        """Take ``amount`` credits, waiting while the gate is exhausted.

        Requests larger than the whole budget are clamped to it — a
        single oversized item must not deadlock the gate.  Waiters are
        served strictly in arrival order, so no source can starve the
        others by being fast.
        """
        if amount < 1:
            raise ValueError(f"amount must be >= 1, got {amount}")
        amount = min(amount, self.capacity)
        if not self._waiters and self._available >= amount:
            self._available -= amount
            return
        future = asyncio.get_running_loop().create_future()
        # A mutable entry: a later resize() re-clamps queued amounts
        # in place so a shrink can never strand an oversized waiter.
        # The original request rides along so a grow can restore it —
        # the clamp is a function of the *current* capacity, not a
        # one-way haircut.
        entry = [amount, future, amount]
        self._waiters.append(entry)
        self.waits += 1
        blocked_at = time.monotonic()
        try:
            await future
            self.wait_seconds += time.monotonic() - blocked_at
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # Credits were granted between the grant and the
                # cancellation landing; hand back what was actually
                # granted (a resize may have re-clamped the amount).
                self.release(entry[0])
            else:
                try:
                    self._waiters.remove(entry)
                except ValueError:
                    pass
            raise

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` credits and wake eligible waiters in order."""
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        self._available = min(self.capacity, self._available + amount)
        self._grant()

    def resize(self, capacity: int) -> None:
        """Change the credit budget at runtime (autoscale's knob).

        Growing grants waiting producers immediately, in order.
        Shrinking takes effect as in-flight credits drain back: the
        delta comes straight off ``available`` (possibly below zero),
        and :meth:`release`'s clamp settles the pool at the new
        capacity.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        delta = capacity - self.capacity
        if not delta:
            return
        self.capacity = capacity
        self._available += delta
        # Keep acquire()'s no-deadlock invariant under the new budget:
        # a queued request larger than the whole (shrunken) budget
        # could never be granted, so re-clamp — against the *original*
        # request, so a later grow restores what a dip took away
        # (clamping in place only would grant a producer that queued
        # acquire(8) during a dip to 2 just 2 credits forever).
        for entry in self._waiters:
            entry[0] = min(entry[2], capacity)
        self._grant()

    def _grant(self) -> None:
        while self._waiters:
            amount, future = self._waiters[0][0], self._waiters[0][1]
            if future.cancelled():
                self._waiters.popleft()
                continue
            if self._available < amount:
                break
            self._waiters.popleft()
            self._available -= amount
            future.set_result(None)
