"""Credit-based flow control for the ingestion front-end.

MoniLog's input model is many live sources feeding one analysis
stream; a single slow consumer (the streaming pipeline scoring off the
event loop) must be able to slow *every* producer down, or fast
sources overrun the process with buffered records.  The classic
mechanism is credits: each record occupies one credit from the moment
its reader emits it until the pipeline has fully processed the batch
containing it.  When credits run out, readers block in
:meth:`CreditGate.acquire` — back-pressure propagates to the tail
loops and socket reads themselves, bounding end-to-end memory by the
credit budget however unbalanced the source rates are.

The gate is a plain asyncio primitive (single event loop, no locks):
``acquire`` is awaitable and FIFO-fair, ``release`` is synchronous so
completion paths — including executor-thread callbacks marshalled via
``call_soon_threadsafe`` — can hand credits back without awaiting.
"""

from __future__ import annotations

import asyncio
from collections import deque


class CreditGate:
    """An async counting gate with FIFO hand-off and wait accounting.

    ``capacity`` is the total credit budget.  :meth:`acquire` takes
    credits, blocking while the gate is exhausted; :meth:`release`
    returns them and wakes waiters in arrival order.  ``waits`` counts
    the times a producer actually had to block — the signal that
    back-pressure engaged, which the ingestion stats surface.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._available = capacity
        self._waiters: deque[tuple[int, asyncio.Future]] = deque()
        self.waits = 0

    @property
    def available(self) -> int:
        return self._available

    @property
    def in_use(self) -> int:
        return self.capacity - self._available

    async def acquire(self, amount: int = 1) -> None:
        """Take ``amount`` credits, waiting while the gate is exhausted.

        Requests larger than the whole budget are clamped to it — a
        single oversized item must not deadlock the gate.  Waiters are
        served strictly in arrival order, so no source can starve the
        others by being fast.
        """
        if amount < 1:
            raise ValueError(f"amount must be >= 1, got {amount}")
        amount = min(amount, self.capacity)
        if not self._waiters and self._available >= amount:
            self._available -= amount
            return
        future = asyncio.get_running_loop().create_future()
        entry = (amount, future)
        self._waiters.append(entry)
        self.waits += 1
        try:
            await future
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # Credits were granted between the grant and the
                # cancellation landing; hand them straight back.
                self.release(amount)
            else:
                try:
                    self._waiters.remove(entry)
                except ValueError:
                    pass
            raise

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` credits and wake eligible waiters in order."""
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        self._available = min(self.capacity, self._available + amount)
        self._grant()

    def _grant(self) -> None:
        while self._waiters:
            amount, future = self._waiters[0]
            if future.cancelled():
                self._waiters.popleft()
                continue
            if self._available < amount:
                break
            self._waiters.popleft()
            self._available -= amount
            future.set_result(None)
