"""Dense, embedding, dropout, and activation functions."""

from __future__ import annotations

import numpy as np

from repro.nn.network import Module, Parameter, glorot


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


class Dense(Module):
    """Affine layer ``y = x W + b``.

    ``forward`` caches the input for ``backward``; one live cache per
    call site is enough for the sequential training loops used here.
    """

    def __init__(self, in_features: int, out_features: int, *, seed: int = 0):
        if in_features < 1 or out_features < 1:
            raise ValueError("Dense dimensions must be >= 1")
        rng = np.random.default_rng(seed)
        self.weight = Parameter("dense.weight", glorot(rng, in_features, out_features))
        self.bias = Parameter("dense.bias", np.zeros(out_features))
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        x = self._input
        # Collapse any leading batch/time axes for the weight gradient.
        flat_x = x.reshape(-1, x.shape[-1])
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        self.weight.grad += flat_x.T @ flat_grad
        self.bias.grad += flat_grad.sum(axis=0)
        return grad_output @ self.weight.value.T


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, vocabulary: int, dimension: int, *, seed: int = 0):
        if vocabulary < 1 or dimension < 1:
            raise ValueError("Embedding dimensions must be >= 1")
        rng = np.random.default_rng(seed)
        self.table = Parameter(
            "embedding.table", rng.normal(0.0, 0.1, size=(vocabulary, dimension))
        )
        self._ids: np.ndarray | None = None

    @property
    def vocabulary(self) -> int:
        return self.table.value.shape[0]

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocabulary):
            raise IndexError(
                f"embedding ids out of range [0, {self.vocabulary}): "
                f"[{ids.min()}, {ids.max()}]"
            )
        self._ids = ids
        return self.table.value[ids]

    def backward(self, grad_output: np.ndarray) -> None:
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        np.add.at(
            self.table.grad,
            self._ids.reshape(-1),
            grad_output.reshape(-1, grad_output.shape[-1]),
        )


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float = 0.1, *, seed: int = 0):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
