"""Save and load module parameters as ``.npz`` archives.

Parameters are addressed positionally (the discovery order of
:meth:`repro.nn.network.Module.parameters` is deterministic for a given
model class), with shapes verified at load time so a mismatched
architecture fails loudly instead of silently mis-assigning weights.
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn.network import Module


def save_module(module: Module, path: str | os.PathLike[str]) -> None:
    """Write all parameters of ``module`` to ``path`` (npz)."""
    parameters = module.parameters()
    arrays = {
        f"parameter_{index:04d}": parameter.value
        for index, parameter in enumerate(parameters)
    }
    names = np.array([parameter.name for parameter in parameters])
    np.savez(path, __names__=names, **arrays)


def load_module(module: Module, path: str | os.PathLike[str]) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``.

    Raises ``ValueError`` on count or shape mismatch.
    """
    archive = np.load(path, allow_pickle=False)
    parameters = module.parameters()
    keys = sorted(key for key in archive.files if key.startswith("parameter_"))
    if len(keys) != len(parameters):
        raise ValueError(
            f"archive has {len(keys)} parameters, module has {len(parameters)}"
        )
    for key, parameter in zip(keys, parameters):
        stored = archive[key]
        if stored.shape != parameter.value.shape:
            raise ValueError(
                f"shape mismatch for {parameter.name}: archive {stored.shape} "
                f"vs module {parameter.value.shape}"
            )
        parameter.value[...] = stored
    return module
