"""LSTM and bidirectional LSTM with full backpropagation through time.

The gate math follows Hochreiter & Schmidhuber as used by every deep
log-anomaly model the paper cites: input, forget, cell-candidate and
output gates computed from ``[x_t, h_{t-1}]``; forget-gate bias
initialized to 1 (the standard trick that stabilizes early training).

Shapes are batch-first: inputs ``(batch, time, features)``, outputs
``(batch, time, hidden)``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import sigmoid
from repro.nn.network import Module, Parameter, glorot


class Lstm(Module):
    """A single-layer LSTM.

    Args:
        input_size: feature dimension of each timestep.
        hidden_size: dimension of the hidden/cell state.
        seed: parameter initialization seed.
    """

    def __init__(self, input_size: int, hidden_size: int, *, seed: int = 0):
        if input_size < 1 or hidden_size < 1:
            raise ValueError("Lstm dimensions must be >= 1")
        rng = np.random.default_rng(seed)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gate order along the last axis: input, forget, cell, output.
        self.w_x = Parameter(
            "lstm.w_x", glorot(rng, input_size, 4 * hidden_size)
        )
        self.w_h = Parameter(
            "lstm.w_h", glorot(rng, hidden_size, 4 * hidden_size)
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = Parameter("lstm.bias", bias)
        self._cache: dict[str, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the full sequence; returns all hidden states."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"expected (batch, time, features), got {x.shape}")
        batch, steps, _ = x.shape
        hidden = self.hidden_size
        h = np.zeros((batch, steps + 1, hidden))
        c = np.zeros((batch, steps + 1, hidden))
        gates = np.zeros((batch, steps, 4 * hidden))
        for t in range(steps):
            raw = x[:, t] @ self.w_x.value + h[:, t] @ self.w_h.value + self.bias.value
            i = sigmoid(raw[:, :hidden])
            f = sigmoid(raw[:, hidden:2 * hidden])
            g = np.tanh(raw[:, 2 * hidden:3 * hidden])
            o = sigmoid(raw[:, 3 * hidden:])
            c[:, t + 1] = f * c[:, t] + i * g
            h[:, t + 1] = o * np.tanh(c[:, t + 1])
            gates[:, t] = np.concatenate([i, f, g, o], axis=1)
        self._cache = {"x": x, "h": h, "c": c, "gates": gates}
        return h[:, 1:]

    def last_hidden(self, x: np.ndarray) -> np.ndarray:
        """Convenience: forward and return only the final hidden state."""
        return self.forward(x)[:, -1]

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        """BPTT.  ``grad_outputs`` matches the forward output shape.

        Returns the gradient with respect to the input sequence.
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache["x"]
        h = self._cache["h"]
        c = self._cache["c"]
        gates = self._cache["gates"]
        batch, steps, _ = x.shape
        hidden = self.hidden_size

        grad_x = np.zeros_like(x)
        grad_h_next = np.zeros((batch, hidden))
        grad_c_next = np.zeros((batch, hidden))
        for t in range(steps - 1, -1, -1):
            i = gates[:, t, :hidden]
            f = gates[:, t, hidden:2 * hidden]
            g = gates[:, t, 2 * hidden:3 * hidden]
            o = gates[:, t, 3 * hidden:]
            c_t = c[:, t + 1]
            tanh_c = np.tanh(c_t)

            grad_h = grad_outputs[:, t] + grad_h_next
            grad_o = grad_h * tanh_c
            grad_c = grad_h * o * (1.0 - tanh_c ** 2) + grad_c_next
            grad_i = grad_c * g
            grad_f = grad_c * c[:, t]
            grad_g = grad_c * i

            # Through the gate nonlinearities.
            raw_i = grad_i * i * (1.0 - i)
            raw_f = grad_f * f * (1.0 - f)
            raw_g = grad_g * (1.0 - g ** 2)
            raw_o = grad_o * o * (1.0 - o)
            raw = np.concatenate([raw_i, raw_f, raw_g, raw_o], axis=1)

            self.w_x.grad += x[:, t].T @ raw
            self.w_h.grad += h[:, t].T @ raw
            self.bias.grad += raw.sum(axis=0)

            grad_x[:, t] = raw @ self.w_x.value.T
            grad_h_next = raw @ self.w_h.value.T
            grad_c_next = grad_c * f
        return grad_x

    def backward_last(self, grad_last: np.ndarray) -> np.ndarray:
        """BPTT when only the final hidden state fed the loss."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        steps = self._cache["x"].shape[1]
        grad_outputs = np.zeros(
            (grad_last.shape[0], steps, self.hidden_size)
        )
        grad_outputs[:, -1] = grad_last
        return self.backward(grad_outputs)


class BiLstm(Module):
    """Bidirectional LSTM: forward and reversed passes, concatenated.

    Output shape ``(batch, time, 2 * hidden)`` — forward states in the
    first half of the last axis, backward states in the second.
    """

    def __init__(self, input_size: int, hidden_size: int, *, seed: int = 0):
        self.forward_lstm = Lstm(input_size, hidden_size, seed=seed)
        self.backward_lstm = Lstm(input_size, hidden_size, seed=seed + 1)
        self.hidden_size = hidden_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        forward_states = self.forward_lstm.forward(x)
        backward_states = self.backward_lstm.forward(x[:, ::-1])[:, ::-1]
        return np.concatenate([forward_states, backward_states], axis=2)

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        hidden = self.hidden_size
        grad_forward = grad_outputs[:, :, :hidden]
        grad_backward = grad_outputs[:, :, hidden:]
        grad_x = self.forward_lstm.backward(grad_forward)
        grad_x_reversed = self.backward_lstm.backward(grad_backward[:, ::-1])
        return grad_x + grad_x_reversed[:, ::-1]
