"""Optimizers: SGD with momentum and Adam."""

from __future__ import annotations

import numpy as np

from repro.nn.network import Parameter


def clip_gradients(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  LSTM training is unstable without this.
    """
    total = 0.0
    for parameter in parameters:
        total += float((parameter.grad ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for parameter in parameters:
            parameter.grad *= scale
    return norm


class Sgd:
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        momentum: float = 0.9,
        max_grad_norm: float = 5.0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.max_grad_norm = max_grad_norm
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, parameters: list[Parameter]) -> None:
        clip_gradients(parameters, self.max_grad_norm)
        for parameter in parameters:
            velocity = self._velocity.get(id(parameter))
            if velocity is None:
                velocity = np.zeros_like(parameter.value)
            velocity = self.momentum * velocity - self.learning_rate * parameter.grad
            self._velocity[id(parameter)] = velocity
            parameter.value += velocity


class Adam:
    """Adam (Kingma & Ba) with bias correction and gradient clipping."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        max_grad_norm: float = 5.0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.max_grad_norm = max_grad_norm
        self._first: dict[int, np.ndarray] = {}
        self._second: dict[int, np.ndarray] = {}
        self._step_count = 0

    def step(self, parameters: list[Parameter]) -> None:
        clip_gradients(parameters, self.max_grad_norm)
        self._step_count += 1
        correction1 = 1.0 - self.beta1 ** self._step_count
        correction2 = 1.0 - self.beta2 ** self._step_count
        for parameter in parameters:
            key = id(parameter)
            first = self._first.get(key)
            second = self._second.get(key)
            if first is None:
                first = np.zeros_like(parameter.value)
                second = np.zeros_like(parameter.value)
            first = self.beta1 * first + (1.0 - self.beta1) * parameter.grad
            second = self.beta2 * second + (1.0 - self.beta2) * parameter.grad ** 2
            self._first[key] = first
            self._second[key] = second
            corrected_first = first / correction1
            corrected_second = second / correction2
            parameter.value -= (
                self.learning_rate
                * corrected_first
                / (np.sqrt(corrected_second) + self.epsilon)
            )
