"""From-scratch neural substrate (numpy).

The deep detectors the paper studies (DeepLog, LogAnomaly, LogRobust)
are LSTM models.  PyTorch is not available in this environment, so this
subpackage implements the required stack directly on numpy:

* :mod:`repro.nn.network` — :class:`Parameter` / :class:`Module` base,
  the :class:`Trainer` minibatch loop;
* :mod:`repro.nn.layers` — dense, embedding, activations, dropout;
* :mod:`repro.nn.lstm` — LSTM and bidirectional LSTM layers with full
  backpropagation through time;
* :mod:`repro.nn.attention` — the additive attention used by LogRobust;
* :mod:`repro.nn.losses` — softmax cross-entropy and MSE with
  analytical gradients;
* :mod:`repro.nn.optim` — SGD (momentum) and Adam;
* :mod:`repro.nn.serialize` — save/load parameters as ``.npz``.

Gradient correctness of every layer is property-tested against central
finite differences in ``tests/test_nn_gradients.py``.
"""

from repro.nn.network import Module, Parameter, Trainer
from repro.nn.layers import Dense, Dropout, Embedding, relu, sigmoid, tanh
from repro.nn.lstm import BiLstm, Lstm
from repro.nn.attention import AdditiveAttention
from repro.nn.losses import mse_loss, softmax, softmax_cross_entropy
from repro.nn.optim import Adam, Sgd
from repro.nn.serialize import load_module, save_module

__all__ = [
    "Adam",
    "AdditiveAttention",
    "BiLstm",
    "Dense",
    "Dropout",
    "Embedding",
    "Lstm",
    "Module",
    "Parameter",
    "Sgd",
    "Trainer",
    "load_module",
    "mse_loss",
    "relu",
    "save_module",
    "sigmoid",
    "softmax",
    "softmax_cross_entropy",
    "tanh",
]
