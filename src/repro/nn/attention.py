"""Additive (Bahdanau-style) attention, as used by LogRobust.

LogRobust pools the BiLSTM states with a learned attention so the
classifier focuses on the few events that matter in a long session.
Scores: ``score_t = v . tanh(h_t W + b)``; weights are the softmax over
time; the output is the weighted sum of states.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import softmax
from repro.nn.network import Module, Parameter, glorot


class AdditiveAttention(Module):
    """Attention pooling over a state sequence.

    Args:
        state_size: dimension of each timestep state.
        attention_size: dimension of the score projection.
        seed: initialization seed.
    """

    def __init__(self, state_size: int, attention_size: int = 32, *, seed: int = 0):
        if state_size < 1 or attention_size < 1:
            raise ValueError("attention dimensions must be >= 1")
        rng = np.random.default_rng(seed)
        self.weight = Parameter(
            "attention.weight", glorot(rng, state_size, attention_size)
        )
        self.bias = Parameter("attention.bias", np.zeros(attention_size))
        self.vector = Parameter(
            "attention.vector",
            rng.normal(0.0, 0.1, size=attention_size),
        )
        self._cache: dict[str, np.ndarray] | None = None

    def forward(self, states: np.ndarray) -> np.ndarray:
        """Pool ``(batch, time, state)`` into ``(batch, state)``."""
        projected = np.tanh(states @ self.weight.value + self.bias.value)
        scores = projected @ self.vector.value  # (batch, time)
        weights = softmax(scores)
        context = np.einsum("bt,bts->bs", weights, states)
        self._cache = {
            "states": states,
            "projected": projected,
            "weights": weights,
        }
        return context

    def attention_weights(self) -> np.ndarray:
        """The last computed attention distribution (for inspection)."""
        if self._cache is None:
            raise RuntimeError("attention_weights called before forward")
        return self._cache["weights"]

    def backward(self, grad_context: np.ndarray) -> np.ndarray:
        """Returns the gradient with respect to the input states."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        states = self._cache["states"]
        projected = self._cache["projected"]
        weights = self._cache["weights"]

        # context = sum_t weights_t * states_t
        grad_weights = np.einsum("bs,bts->bt", grad_context, states)
        grad_states = weights[:, :, None] * grad_context[:, None, :]

        # Softmax backward.
        dot = (grad_weights * weights).sum(axis=1, keepdims=True)
        grad_scores = weights * (grad_weights - dot)

        # scores = projected @ vector
        self.vector.grad += np.einsum("bt,bta->a", grad_scores, projected)
        grad_projected = grad_scores[:, :, None] * self.vector.value[None, None, :]

        # projected = tanh(states @ W + b)
        grad_raw = grad_projected * (1.0 - projected ** 2)
        flat_states = states.reshape(-1, states.shape[-1])
        flat_raw = grad_raw.reshape(-1, grad_raw.shape[-1])
        self.weight.grad += flat_states.T @ flat_raw
        self.bias.grad += flat_raw.sum(axis=0)
        grad_states += grad_raw @ self.weight.value.T
        return grad_states
