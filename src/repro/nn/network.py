"""Parameters, modules, and the training loop."""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

import numpy as np


class Parameter:
    """A trainable tensor with its accumulated gradient."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, name: str, value: np.ndarray):
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter({self.name}, shape={self.value.shape})"


class Module:
    """Base class for layers and models.

    Sub-modules and parameters are discovered by attribute scan, the
    way small autograd libraries do it; there is no registration API to
    forget.  ``forward`` signatures are layer-specific; every layer
    also exposes a ``backward`` that consumes the upstream gradient and
    accumulates into its parameters.
    """

    training: bool = True

    def parameters(self) -> list[Parameter]:
        found: list[Parameter] = []
        seen: set[int] = set()
        for value in vars(self).values():
            for parameter in _parameters_of(value):
                if id(parameter) not in seen:
                    seen.add(id(parameter))
                    found.append(parameter)
        return found

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def train_mode(self, training: bool = True) -> "Module":
        self.training = training
        for value in vars(self).values():
            for module in _modules_of(value):
                module.train_mode(training)
        return self

    def eval_mode(self) -> "Module":
        return self.train_mode(False)

    def parameter_count(self) -> int:
        return sum(parameter.value.size for parameter in self.parameters())


def _parameters_of(value: object) -> Iterator[Parameter]:
    if isinstance(value, Parameter):
        yield value
    elif isinstance(value, Module):
        yield from value.parameters()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _parameters_of(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _parameters_of(item)


def _modules_of(value: object) -> Iterator[Module]:
    if isinstance(value, Module):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _modules_of(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _modules_of(item)


def glorot(rng: np.random.Generator, fan_in: int, fan_out: int,
           shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape or (fan_in, fan_out))


@dataclass
class EpochStats:
    """Loss/accuracy summary for one training epoch."""

    epoch: int
    loss: float
    accuracy: float | None = None


class Trainer:
    """Minibatch trainer for next-event / classification models.

    The model contract: ``loss_fn(x_batch, y_batch) -> (loss, correct)``
    must run forward + backward (accumulating parameter gradients) and
    return the scalar loss plus the number of correct predictions (or
    ``None`` when accuracy is meaningless, e.g. regression).

    Args:
        model: the module whose parameters are optimized.
        optimizer: an object with ``step(parameters)``.
        batch_size: minibatch size.
        epochs: training epochs.
        shuffle: reshuffle sample order each epoch.
        seed: RNG seed for shuffling.
    """

    def __init__(
        self,
        model: Module,
        optimizer,
        *,
        batch_size: int = 64,
        epochs: int = 5,
        shuffle: bool = True,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.batch_size = batch_size
        self.epochs = epochs
        self.shuffle = shuffle
        self.seed = seed
        self.history: list[EpochStats] = []

    def fit(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        loss_fn: Callable[[np.ndarray, np.ndarray], tuple[float, int | None]],
    ) -> list[EpochStats]:
        """Run the training loop; returns per-epoch statistics."""
        if len(inputs) != len(targets):
            raise ValueError(
                f"inputs ({len(inputs)}) and targets ({len(targets)}) disagree"
            )
        if len(inputs) == 0:
            return []
        rng = np.random.default_rng(self.seed)
        order = np.arange(len(inputs))
        self.model.train_mode(True)
        for epoch in range(self.epochs):
            if self.shuffle:
                rng.shuffle(order)
            total_loss = 0.0
            total_correct = 0
            saw_accuracy = False
            for start in range(0, len(order), self.batch_size):
                batch = order[start:start + self.batch_size]
                self.model.zero_grad()
                loss, correct = loss_fn(inputs[batch], targets[batch])
                self.optimizer.step(self.model.parameters())
                total_loss += loss * len(batch)
                if correct is not None:
                    saw_accuracy = True
                    total_correct += correct
            stats = EpochStats(
                epoch=epoch,
                loss=total_loss / len(order),
                accuracy=(total_correct / len(order)) if saw_accuracy else None,
            )
            self.history.append(stats)
        self.model.train_mode(False)
        return self.history
