"""Losses with analytical gradients."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray]:
    """Mean cross-entropy of integer targets under softmax(logits).

    Returns ``(loss, grad_logits, probabilities)``; the gradient is
    already averaged over the batch, so callers backpropagate it as-is.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ValueError(
            f"targets shape {targets.shape} does not match batch {logits.shape[0]}"
        )
    probabilities = softmax(logits)
    batch = logits.shape[0]
    picked = probabilities[np.arange(batch), targets]
    loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
    grad = probabilities.copy()
    grad[np.arange(batch), targets] -= 1.0
    grad /= batch
    return loss, grad, probabilities


def binary_cross_entropy_with_logits(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray]:
    """Mean BCE of 0/1 targets under sigmoid(logits).

    Returns ``(loss, grad_logits, probabilities)``.
    """
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    if logits.shape != targets.shape:
        raise ValueError(
            f"logits {logits.shape} and targets {targets.shape} disagree"
        )
    # log(1 + e^{-|x|}) formulation avoids overflow.
    loss_terms = np.maximum(logits, 0.0) - logits * targets + np.log1p(
        np.exp(-np.abs(logits))
    )
    loss = float(loss_terms.mean())
    probabilities = 1.0 / (1.0 + np.exp(-np.clip(logits, -500, 500)))
    grad = (probabilities - targets) / len(logits)
    return loss, grad, probabilities


def mse_loss(
    predictions: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. predictions."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"predictions {predictions.shape} and targets {targets.shape} disagree"
        )
    difference = predictions - targets
    loss = float((difference ** 2).mean())
    grad = 2.0 * difference / difference.size
    return loss, grad
