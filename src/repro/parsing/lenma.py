"""LenMa: clustering log messages by word lengths (Shima, 2016).

LenMa's insight: for two messages of the same statement, the *lengths*
of the words at each position are similar even when the words differ
(variable values tend to keep their width class).  A message joins the
cluster whose word-length vector has the highest cosine similarity,
subject to a threshold, with an additional positional exact-match
heuristic for short messages.
"""

from __future__ import annotations

import math

from repro.api.registry import register_component
from repro.parsing.base import MinedTemplate, OnlineParser
from repro.parsing.masking import Masker


def _length_vector(tokens: list[str]) -> list[int]:
    return [len(token) for token in tokens]


def _cosine(left: list[int], right: list[int]) -> float:
    dot = sum(a * b for a, b in zip(left, right))
    norm_left = math.sqrt(sum(a * a for a in left))
    norm_right = math.sqrt(sum(b * b for b in right))
    if norm_left == 0.0 or norm_right == 0.0:
        return 1.0 if norm_left == norm_right else 0.0
    return dot / (norm_left * norm_right)


class _LenMaCluster:
    """A template plus its evolving word-length vector."""

    __slots__ = ("template", "lengths")

    def __init__(self, template: MinedTemplate, lengths: list[int]):
        self.template = template
        self.lengths = lengths

    def update(self, tokens: list[str]) -> None:
        self.template.merge(tokens)
        # The cluster vector tracks the latest lengths at variable
        # positions (Shima's incremental update keeps the new value).
        self.lengths = _length_vector(tokens)


@register_component("parser", "lenma")
class LenMaParser(OnlineParser):
    """The word-length clustering parser.

    Args:
        threshold: minimum cosine similarity between word-length
            vectors for a merge (Shima's default 0.9).
        positional_weight: fraction of positions that must match
            exactly for short messages (<= 3 tokens), guarding the
            length heuristic where it is weakest.
        masker / extract_structured: see :class:`repro.parsing.base.Parser`.
    """

    def __init__(
        self,
        threshold: float = 0.9,
        positional_weight: float = 0.5,
        masker: Masker | None = None,
        extract_structured: bool = False,
    ) -> None:
        super().__init__(masker, extract_structured)
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.positional_weight = positional_weight
        self._by_length: dict[int, list[_LenMaCluster]] = {}

    def _positional_match(self, cluster: _LenMaCluster, tokens: list[str]) -> float:
        if not tokens:
            return 1.0
        matches = sum(
            1
            for mine, theirs in zip(cluster.template.tokens, tokens)
            if mine == theirs
        )
        return matches / len(tokens)

    def _classify(self, tokens: list[str]) -> MinedTemplate:
        candidates = self._by_length.get(len(tokens), [])
        vector = _length_vector(tokens)
        best: _LenMaCluster | None = None
        best_score = 0.0
        for cluster in candidates:
            score = _cosine(cluster.lengths, vector)
            if score > best_score:
                best, best_score = cluster, score
        if best is not None and best_score >= self.threshold:
            if (
                len(tokens) > 3
                or self._positional_match(best, tokens) >= self.positional_weight
            ):
                best.update(tokens)
                return best.template
        template = self.store.create(tokens)
        self._by_length.setdefault(len(tokens), []).append(
            _LenMaCluster(template, vector)
        )
        return template
