"""SHISO: incremental mining of log formats (Mizutani, SCC'13).

SHISO grows a search tree of clusters.  Each node holds one format
(template); a new message descends the tree looking for a node whose
*character-class composition* is close enough (the ``similarity``
threshold), comparing per-position vectors counting uppercase,
lowercase, digit and other characters.  If no node within the first
``max_children`` children matches, the message becomes a new child.
"""

from __future__ import annotations

import math

from repro.api.registry import register_component
from repro.logs.record import WILDCARD
from repro.parsing.base import MinedTemplate, OnlineParser
from repro.parsing.masking import Masker


def _char_class_vector(token: str) -> tuple[int, int, int, int]:
    """(uppercase, lowercase, digit, other) counts of a token."""
    upper = lower = digit = other = 0
    for character in token:
        if character.isupper():
            upper += 1
        elif character.islower():
            lower += 1
        elif character.isdigit():
            digit += 1
        else:
            other += 1
    return upper, lower, digit, other


def _token_distance(left: str, right: str) -> float:
    """Normalized euclidean distance between char-class vectors."""
    left_vector = _char_class_vector(left)
    right_vector = _char_class_vector(right)
    squared = sum((a - b) ** 2 for a, b in zip(left_vector, right_vector))
    scale = max(len(left), len(right))
    if scale == 0:
        return 0.0
    return min(1.0, math.sqrt(squared) / (2.0 * scale))


def _sequence_similarity(template_tokens: list[str], tokens: list[str]) -> float:
    """1 - mean per-position char-class distance (same lengths only).

    Positions the template already generalized to a wildcard accept any
    token at distance 0 — a wildcard slot carries no character-class
    expectation.
    """
    if len(template_tokens) != len(tokens):
        return 0.0
    if not tokens:
        return 1.0
    total = sum(
        0.0 if mine == WILDCARD else _token_distance(mine, theirs)
        for mine, theirs in zip(template_tokens, tokens)
    )
    return 1.0 - total / len(tokens)


class _ShisoNode:
    __slots__ = ("template", "children")

    def __init__(self, template: MinedTemplate | None):
        self.template = template
        self.children: list[_ShisoNode] = []


@register_component("parser", "shiso")
class ShisoParser(OnlineParser):
    """The incremental format-tree parser.

    Args:
        similarity_threshold: minimum sequence similarity (char-class
            based) to adopt a node's format (default 0.875, mirroring
            the original's recommended region).
        max_children: children scanned per node before descending
            (SHISO's ``c`` parameter, default 4).
        masker / extract_structured: see :class:`repro.parsing.base.Parser`.
    """

    def __init__(
        self,
        similarity_threshold: float = 0.875,
        max_children: int = 4,
        masker: Masker | None = None,
        extract_structured: bool = False,
    ) -> None:
        super().__init__(masker, extract_structured)
        if not 0.0 < similarity_threshold <= 1.0:
            raise ValueError(
                f"similarity_threshold must be in (0, 1], got {similarity_threshold}"
            )
        if max_children < 1:
            raise ValueError(f"max_children must be >= 1, got {max_children}")
        self.similarity_threshold = similarity_threshold
        self.max_children = max_children
        self._root = _ShisoNode(template=None)

    def _classify(self, tokens: list[str]) -> MinedTemplate:
        node = self._root
        while True:
            best_child: _ShisoNode | None = None
            best_score = 0.0
            for child in node.children[: self.max_children]:
                assert child.template is not None
                score = _sequence_similarity(child.template.tokens, tokens)
                if score > best_score:
                    best_child, best_score = child, score
            if best_child is not None and best_score >= self.similarity_threshold:
                assert best_child.template is not None
                best_child.template.merge(tokens)
                return best_child.template
            if len(node.children) < self.max_children:
                template = self.store.create(tokens)
                node.children.append(_ShisoNode(template))
                return template
            # Node is full and nothing matched: descend into the most
            # similar child and retry (SHISO's search step).
            if best_child is None:
                best_child = node.children[0]
            node = best_child
