"""Logram: log parsing with n-gram dictionaries (Dai et al., 2020).

Logram's idea: in a large corpus, n-grams made of *static* tokens are
frequent, while n-grams containing a variable are rare.  The parser
maintains 2-gram and 3-gram frequency dictionaries; a token is declared
variable when all the 3-grams covering it are rare and the 2-grams
covering it are rare too (the original's two-level check).

This implementation is the online variant: dictionaries update as the
stream is consumed, so early messages are classified with cold
dictionaries — the warm-up inaccuracy is a known property of Logram and
shows up in the parser benchmark (experiment X4), which is precisely
the kind of automation limit the paper wants surfaced.
"""

from __future__ import annotations

from collections import Counter

from repro.api.registry import register_component
from repro.logs.record import WILDCARD, tokenize
from repro.logs.structured import extract_structured_payload
from repro.parsing.base import MinedTemplate, OnlineParser
from repro.parsing.masking import Masker


@register_component("parser", "logram")
class LogramParser(OnlineParser):
    """The n-gram dictionary parser.

    Args:
        doublet_threshold: a 2-gram with count below this is "rare".
        triplet_threshold: a 3-gram with count below this is "rare".
        masker / extract_structured: see :class:`repro.parsing.base.Parser`.
    """

    def __init__(
        self,
        doublet_threshold: int = 8,
        triplet_threshold: int = 4,
        masker: Masker | None = None,
        extract_structured: bool = False,
    ) -> None:
        super().__init__(masker, extract_structured)
        if doublet_threshold < 1 or triplet_threshold < 1:
            raise ValueError("n-gram thresholds must be >= 1")
        self.doublet_threshold = doublet_threshold
        self.triplet_threshold = triplet_threshold
        self._doublets: Counter[tuple[str, str]] = Counter()
        self._triplets: Counter[tuple[str, str, str]] = Counter()
        self._by_mask: dict[tuple[str, ...], MinedTemplate] = {}

    def warmup(self, records) -> "LogramParser":
        """Pre-populate the n-gram dictionaries without classifying.

        The original Logram is two-pass: dictionaries first, templates
        second.  Streaming deployments can instead warm up on a buffer
        of early records and replay them — this method is that first
        pass.  Without it the first occurrences of each statement are
        classified with cold dictionaries and land in junk templates
        (measured by experiment X4).
        """
        for record in records:
            message = record.message
            if self.extract_structured:
                message = extract_structured_payload(message).text
            self._update_dictionaries(tokenize(self.masker.mask(message)))
        return self

    def _update_dictionaries(self, tokens: list[str]) -> None:
        for index in range(len(tokens) - 1):
            self._doublets[(tokens[index], tokens[index + 1])] += 1
        for index in range(len(tokens) - 2):
            self._triplets[
                (tokens[index], tokens[index + 1], tokens[index + 2])
            ] += 1

    def _variable_positions(self, tokens: list[str]) -> set[int]:
        """Decide variable positions via the two-level n-gram check."""
        length = len(tokens)
        if length == 0:
            return set()
        if length == 1:
            # No n-gram evidence for singleton messages; treat as static.
            return set()

        def triplet_rare(start: int) -> bool:
            gram = tuple(tokens[start:start + 3])
            return self._triplets[gram] < self.triplet_threshold

        def doublet_rare(start: int) -> bool:
            gram = tuple(tokens[start:start + 2])
            return self._doublets[gram] < self.doublet_threshold

        suspicious: set[int] = set()
        if length == 2:
            if doublet_rare(0):
                suspicious.update((0, 1))
        else:
            for index in range(length):
                covering = [
                    start
                    for start in range(max(0, index - 2), min(index, length - 3) + 1)
                ]
                if covering and all(triplet_rare(start) for start in covering):
                    suspicious.add(index)
        # Second level: a suspicious token is confirmed variable only if
        # the 2-grams covering it are rare as well.
        confirmed: set[int] = set()
        for index in suspicious:
            doublet_starts = [
                start
                for start in (index - 1, index)
                if 0 <= start <= length - 2
            ]
            if all(doublet_rare(start) for start in doublet_starts):
                confirmed.add(index)
        return confirmed

    def _classify(self, tokens: list[str]) -> MinedTemplate:
        self._update_dictionaries(tokens)
        variable_positions = self._variable_positions(tokens)
        mask = tuple(
            WILDCARD if index in variable_positions else token
            for index, token in enumerate(tokens)
        )
        template = self._by_mask.get(mask)
        if template is None:
            template = self.store.create(mask)
            self._by_mask[mask] = template
        else:
            template.count += 1
        return template
