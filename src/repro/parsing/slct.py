"""SLCT: simple logfile clustering tool (Vaarandi, IPOM'03).

The original frequent-pattern miner for logs.  Two passes:

1. Count (position, word) pair frequencies.
2. Each message's *cluster candidate* keeps the words whose
   (position, word) count meets the ``support`` threshold and wildcards
   the rest; candidates seen at least ``support`` times become
   clusters/templates.

Messages that fall in no cluster are outliers (assigned one-off
templates at parse time by the :class:`~repro.parsing.base.BatchParser`
fallback).
"""

from __future__ import annotations

from collections import Counter

from repro.api.registry import register_component
from repro.logs.record import WILDCARD
from repro.parsing.base import BatchParser
from repro.parsing.masking import Masker


@register_component("parser", "slct")
class SlctParser(BatchParser):
    """The frequent-word clustering batch miner.

    Args:
        support: absolute occurrence threshold for both frequent words
            and cluster candidates (SLCT's ``-s``).
        masker / extract_structured: see :class:`repro.parsing.base.Parser`.
    """

    def __init__(
        self,
        support: int = 10,
        masker: Masker | None = None,
        extract_structured: bool = False,
    ) -> None:
        super().__init__(masker, extract_structured)
        if support < 1:
            raise ValueError(f"support must be >= 1, got {support}")
        self.support = support

    def _mine(self, token_lists: list[list[str]]) -> None:
        word_counts: Counter[tuple[int, str]] = Counter()
        for tokens in token_lists:
            for position, token in enumerate(tokens):
                word_counts[(position, token)] += 1

        candidate_counts: Counter[tuple[str, ...]] = Counter()
        for tokens in token_lists:
            candidate = tuple(
                token
                if word_counts[(position, token)] >= self.support
                else WILDCARD
                for position, token in enumerate(tokens)
            )
            # A candidate with no frequent word carries no information.
            if any(token != WILDCARD for token in candidate):
                candidate_counts[candidate] += 1

        for candidate, count in sorted(candidate_counts.items()):
            if count >= self.support:
                self.store.create(list(candidate))
