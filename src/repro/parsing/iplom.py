"""IPLoM: iterative partitioning log mining (Makanju et al., KDD'09).

IPLoM mines templates in three batch partitioning steps:

1. **Partition by event size** — messages with different token counts
   never share a template.
2. **Partition by token position** — within a size partition, split on
   the position with the fewest distinct tokens (most likely static).
3. **Partition by search-for-bijection** — find the pair of positions
   whose value mapping is closest to 1:1 and split on that relation.

Each final partition becomes a template: positions with a single
distinct value are static, the rest are wildcards.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.api.registry import register_component
from repro.logs.record import WILDCARD
from repro.parsing.base import BatchParser
from repro.parsing.masking import Masker


@register_component("parser", "iplom")
class IplomParser(BatchParser):
    """The iterative partitioning batch miner.

    Args:
        partition_support: minimum fraction of a parent partition a
            child must hold to stand alone; smaller children are pooled
            into an "outlier" partition (IPLoM's PST parameter).
        upper_bound / lower_bound: the bijection-step thresholds that
            decide whether a position pair relation is 1:1, 1:M or M:M
            (defaults follow the paper: 0.9 / 0.25).
        masker / extract_structured: see :class:`repro.parsing.base.Parser`.
    """

    def __init__(
        self,
        partition_support: float = 0.05,
        upper_bound: float = 0.9,
        lower_bound: float = 0.25,
        masker: Masker | None = None,
        extract_structured: bool = False,
    ) -> None:
        super().__init__(masker, extract_structured)
        if not 0.0 <= partition_support < 1.0:
            raise ValueError(
                f"partition_support must be in [0, 1), got {partition_support}"
            )
        self.partition_support = partition_support
        self.upper_bound = upper_bound
        self.lower_bound = lower_bound

    # -- step 2 -------------------------------------------------------------

    def _split_by_position(
        self, partition: list[list[str]]
    ) -> list[list[list[str]]]:
        length = len(partition[0])
        if length == 0:
            return [partition]
        cardinalities = [
            len({tokens[position] for tokens in partition})
            for position in range(length)
        ]
        split_position = cardinalities.index(min(cardinalities))
        if cardinalities[split_position] == 1:
            # Fully static position: nothing to split on.
            if min(cardinalities) == max(cardinalities):
                return [partition]
        groups: dict[str, list[list[str]]] = defaultdict(list)
        for tokens in partition:
            groups[tokens[split_position]].append(tokens)
        if len(groups) == 1:
            return [partition]
        threshold = self.partition_support * len(partition)
        keep: list[list[list[str]]] = []
        outliers: list[list[str]] = []
        for group in groups.values():
            if len(group) >= threshold:
                keep.append(group)
            else:
                outliers.extend(group)
        if outliers:
            keep.append(outliers)
        return keep

    # -- step 3 -------------------------------------------------------------

    def _split_by_bijection(
        self, partition: list[list[str]]
    ) -> list[list[list[str]]]:
        length = len(partition[0])
        if length < 2 or len(partition) < 2:
            return [partition]
        # Pick the two positions with the lowest (>1) cardinality.
        cardinalities = [
            (len({tokens[position] for tokens in partition}), position)
            for position in range(length)
        ]
        varying = sorted(c for c in cardinalities if c[0] > 1)
        if len(varying) < 2:
            return [partition]
        position_a = varying[0][1]
        position_b = varying[1][1]
        mapping: dict[str, set[str]] = defaultdict(set)
        for tokens in partition:
            mapping[tokens[position_a]].add(tokens[position_b])
        one_to_one = sum(1 for values in mapping.values() if len(values) == 1)
        ratio = one_to_one / len(mapping)
        if ratio < self.lower_bound:
            return [partition]
        # Split on the relation: group by the position-a value when the
        # relation is (near) bijective, else by position-b.
        split_position = position_a if ratio >= self.upper_bound else position_b
        groups: dict[str, list[list[str]]] = defaultdict(list)
        for tokens in partition:
            groups[tokens[split_position]].append(tokens)
        threshold = self.partition_support * len(partition)
        keep: list[list[list[str]]] = []
        outliers: list[list[str]] = []
        for group in groups.values():
            if len(group) >= threshold:
                keep.append(group)
            else:
                outliers.extend(group)
        if outliers:
            keep.append(outliers)
        return keep

    # -- template extraction -------------------------------------------------

    @staticmethod
    def _template_tokens(partition: list[list[str]]) -> list[str]:
        length = len(partition[0])
        tokens: list[str] = []
        for position in range(length):
            values = {row[position] for row in partition}
            tokens.append(values.pop() if len(values) == 1 else WILDCARD)
        return tokens

    def _mine(self, token_lists: list[list[str]]) -> None:
        by_size: dict[int, list[list[str]]] = defaultdict(list)
        for tokens in token_lists:
            by_size[len(tokens)].append(tokens)
        for partition in by_size.values():
            for second in self._split_by_position(partition):
                for third in self._split_by_bijection(second):
                    self.store.create(self._template_tokens(third))
