"""LogCluster: data clustering for event logs (Vaarandi & Pihelgas, CNSM'15).

LogCluster generalizes SLCT: frequent words are counted *globally*
(independent of position), and a message's cluster candidate is its
subsequence of frequent words; infrequent stretches between them become
variable-length wildcards.  Candidates above the support threshold
become clusters.

To keep positional variable extraction exact (required by Eq. 1 and the
quantitative detectors), templates are materialized per token count: a
candidate seen with several token counts yields one template per count,
with the wildcard stretches expanded to the right fixed width.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.api.registry import register_component
from repro.logs.record import WILDCARD
from repro.parsing.base import BatchParser
from repro.parsing.masking import Masker


@register_component("parser", "logcluster")
class LogClusterParser(BatchParser):
    """The frequent-word-sequence batch miner.

    Args:
        support: absolute occurrence threshold for frequent words and
            for cluster candidates (LogCluster's ``--support``).
        masker / extract_structured: see :class:`repro.parsing.base.Parser`.
    """

    def __init__(
        self,
        support: int = 10,
        masker: Masker | None = None,
        extract_structured: bool = False,
    ) -> None:
        super().__init__(masker, extract_structured)
        if support < 1:
            raise ValueError(f"support must be >= 1, got {support}")
        self.support = support

    def _mine(self, token_lists: list[list[str]]) -> None:
        word_counts: Counter[str] = Counter()
        for tokens in token_lists:
            # LogCluster counts a word once per line.
            for token in set(tokens):
                word_counts[token] += 1
        frequent = {
            token for token, count in word_counts.items() if count >= self.support
        }

        # Candidate key: the frequent-word subsequence plus the message
        # token count (to materialize fixed-width templates).
        candidates: Counter[tuple[tuple[str, ...], int]] = Counter()
        masks: dict[tuple[tuple[str, ...], int], tuple[str, ...]] = {}
        for tokens in token_lists:
            sequence = tuple(token for token in tokens if token in frequent)
            if not sequence:
                continue
            mask = tuple(
                token if token in frequent else WILDCARD for token in tokens
            )
            key = (sequence, len(tokens))
            candidates[key] += 1
            masks.setdefault(key, mask)

        merged: dict[tuple[tuple[str, ...], int], list[str]] = {}
        for key, count in candidates.items():
            if count >= self.support:
                merged[key] = list(masks[key])
        for key in sorted(merged):
            self.store.create(merged[key])
