"""Spell: streaming parsing via longest common subsequence (Du & Li, ICDM'16).

Spell maintains a set of *LCS objects* (clusters).  A new message joins
the cluster with which it shares the longest common subsequence,
provided the LCS covers at least ``tau`` of the message length; the
cluster template keeps the LCS tokens and wildcards the rest.

Implementation note: the original Spell lets templates change length as
the LCS shrinks.  Here merging is restricted to equal token counts —
matching still uses the LCS criterion, but positional variable
extraction stays exact, which the token-accuracy metric (Eq. 1) and the
quantitative anomaly detectors require.  On fixed-format corpora this
matches the original's behaviour (the LCS of same-statement messages
always has their common length); on corpora with intra-template length
variance it yields slightly more clusters, which we count against Spell
in the benchmark, as the paper's automation study would.
"""

from __future__ import annotations

from repro.api.registry import register_component
from repro.logs.record import WILDCARD
from repro.parsing.base import MinedTemplate, OnlineParser
from repro.parsing.masking import Masker


def _lcs_length(left: list[str], right: list[str]) -> int:
    """Length of the longest common subsequence (classic DP, O(n*m))."""
    if not left or not right:
        return 0
    previous = [0] * (len(right) + 1)
    for left_token in left:
        current = [0]
        for column, right_token in enumerate(right, start=1):
            if left_token == right_token:
                current.append(previous[column - 1] + 1)
            else:
                current.append(max(previous[column], current[-1]))
        previous = current
    return previous[-1]


@register_component("parser", "spell")
class SpellParser(OnlineParser):
    """The streaming LCS parser.

    Args:
        tau: minimum LCS coverage (LCS length / message length) for a
            message to join a cluster.  Spell's usual default is 0.5.
        masker / extract_structured: see :class:`repro.parsing.base.Parser`.
    """

    def __init__(
        self,
        tau: float = 0.5,
        masker: Masker | None = None,
        extract_structured: bool = False,
    ) -> None:
        super().__init__(masker, extract_structured)
        if not 0.0 < tau <= 1.0:
            raise ValueError(f"tau must be in (0, 1], got {tau}")
        self.tau = tau
        # Prefix index: clusters bucketed by token count for cheap
        # candidate lookup (the original uses a prefix tree; bucketing
        # by length gives the same candidates under our equal-length
        # merge rule).
        self._by_length: dict[int, list[MinedTemplate]] = {}

    def _static_tokens(self, template: MinedTemplate) -> list[str]:
        return [token for token in template.tokens if token != WILDCARD]

    def _classify(self, tokens: list[str]) -> MinedTemplate:
        candidates = self._by_length.get(len(tokens), [])
        best: MinedTemplate | None = None
        best_lcs = 0
        for cluster in candidates:
            lcs = _lcs_length(self._static_tokens(cluster), tokens)
            if lcs > best_lcs:
                best, best_lcs = cluster, lcs
        if best is not None and tokens and best_lcs >= self.tau * len(tokens):
            best.merge(tokens)
            return best
        if best is not None and not tokens:
            best.merge(tokens)
            return best
        template = self.store.create(tokens)
        self._by_length.setdefault(len(tokens), []).append(template)
        return template
