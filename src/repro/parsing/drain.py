"""Drain: online log parsing with a fixed-depth tree (He et al., ICWS'17).

Drain routes each message through a fixed-depth prefix tree: the first
level branches on token count, the next ``depth`` levels branch on the
leading tokens (with a special ``<*>`` child for tokens containing
digits), and leaves hold lists of template clusters.  A message joins
the most similar cluster at its leaf if the similarity exceeds the
``similarity_threshold``; otherwise it seeds a new cluster.

The paper (§IV) identifies Drain's two hyper-parameters — tree depth
and similarity threshold — as its automation limit: "their values have
a significant impact on precision.  Therefore, Drain cannot be deployed
in an unknown system with a high level of confidence."  Both are
exposed as constructor arguments and swept by experiments X4/X5.

Drain enables the exact-match template cache
(:class:`~repro.parsing.base.TemplateCache`) by default: repeated
masked lines skip the tree walk and the per-cluster similarity scan.
Hits are byte-identical to a cold classification because entries are
invalidated (via the store's generation counter) whenever any template
is created or refined — the only events that can change which cluster
wins the scan — and because re-merging a previously merged token
sequence never mutates a cluster (after the first merge, every
position is either a wildcard or that sequence's token).
"""

from __future__ import annotations

from repro.api.registry import register_component
from repro.logs.record import WILDCARD
from repro.parsing.base import MinedTemplate, OnlineParser
from repro.parsing.masking import Masker


def _has_digit(token: str) -> bool:
    return any(character.isdigit() for character in token)


class _Node:
    """Internal tree node: children keyed by token (or wildcard)."""

    __slots__ = ("children", "clusters")

    def __init__(self) -> None:
        self.children: dict[str, _Node] = {}
        self.clusters: list[MinedTemplate] = []


@register_component("parser", "drain")
class DrainParser(OnlineParser):
    """The fixed-depth-tree online parser.

    Args:
        depth: number of leading tokens used for tree routing (the
            paper's ``depth`` minus the root/length levels; Drain's
            common default is 4, i.e. 2 routing tokens — here the
            argument counts routing tokens directly, default 2).
        similarity_threshold: minimum :meth:`MinedTemplate.similarity`
            for a message to join an existing cluster (default 0.4).
        max_children: cap on children per internal node; overflow
            tokens route through the wildcard child (default 100).
        masker / extract_structured: preprocessing, see
            :class:`repro.parsing.base.Parser`.
        cache_size: capacity of the exact-match template cache on
            masked content (0 disables it; default 65536 entries).
    """

    def __init__(
        self,
        depth: int = 2,
        similarity_threshold: float = 0.4,
        max_children: int = 100,
        masker: Masker | None = None,
        extract_structured: bool = False,
        cache_size: int = 65536,
    ) -> None:
        super().__init__(masker, extract_structured, cache_size=cache_size)
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if not 0.0 < similarity_threshold <= 1.0:
            raise ValueError(
                f"similarity_threshold must be in (0, 1], got {similarity_threshold}"
            )
        if max_children < 1:
            raise ValueError(f"max_children must be >= 1, got {max_children}")
        self.depth = depth
        self.similarity_threshold = similarity_threshold
        self.max_children = max_children
        self._length_roots: dict[int, _Node] = {}

    def _route(self, tokens: list[str]) -> _Node:
        """Walk (creating) the tree path for a token sequence."""
        node = self._length_roots.setdefault(len(tokens), _Node())
        for level in range(min(self.depth, len(tokens))):
            token = tokens[level]
            if _has_digit(token):
                token = WILDCARD
            child = node.children.get(token)
            if child is None:
                if token != WILDCARD and len(node.children) >= self.max_children:
                    token = WILDCARD
                    child = node.children.get(token)
                if child is None:
                    child = _Node()
                    node.children[token] = child
            node = child
        return node

    def _classify(self, tokens: list[str]) -> MinedTemplate:
        leaf = self._route(tokens)
        best: MinedTemplate | None = None
        best_score = 0.0
        for cluster in leaf.clusters:
            score = cluster.similarity(tokens)
            if score > best_score:
                best, best_score = cluster, score
        if best is not None and best_score >= self.similarity_threshold:
            best.merge(tokens)
            return best
        template = self.store.create(tokens)
        leaf.clusters.append(template)
        return template
