"""Drain: online log parsing with a fixed-depth tree (He et al., ICWS'17).

Drain routes each message through a fixed-depth prefix tree: the first
level branches on token count, the next ``depth`` levels branch on the
leading tokens (with a special ``<*>`` child for tokens containing
digits), and leaves hold lists of template clusters.  A message joins
the most similar cluster at its leaf if the similarity exceeds the
``similarity_threshold``; otherwise it seeds a new cluster.

The paper (§IV) identifies Drain's two hyper-parameters — tree depth
and similarity threshold — as its automation limit: "their values have
a significant impact on precision.  Therefore, Drain cannot be deployed
in an unknown system with a high level of confidence."  Both are
exposed as constructor arguments and swept by experiments X4/X5.

Drain enables the exact-match template cache
(:class:`~repro.parsing.base.TemplateCache`) by default: repeated
masked lines skip the tree walk and the per-cluster similarity scan.
Hits are byte-identical to a cold classification because entries are
invalidated (via the store's generation counter) whenever any template
is created or refined — the only events that can change which cluster
wins the scan — and because re-merging a previously merged token
sequence never mutates a cluster (after the first merge, every
position is either a wildcard or that sequence's token).
"""

from __future__ import annotations

from repro.api.registry import register_component
from repro.logs.record import WILDCARD
from repro.parsing.base import MinedTemplate, OnlineParser
from repro.parsing.masking import Masker


def _has_digit(token: str) -> bool:
    return any(character.isdigit() for character in token)


class _Node:
    """Internal tree node: children keyed by token (or wildcard)."""

    __slots__ = ("children", "clusters")

    def __init__(self) -> None:
        self.children: dict[str, _Node] = {}
        self.clusters: list[MinedTemplate] = []


@register_component("parser", "drain")
class DrainParser(OnlineParser):
    """The fixed-depth-tree online parser.

    Args:
        depth: number of leading tokens used for tree routing (the
            paper's ``depth`` minus the root/length levels; Drain's
            common default is 4, i.e. 2 routing tokens — here the
            argument counts routing tokens directly, default 2).
        similarity_threshold: minimum :meth:`MinedTemplate.similarity`
            for a message to join an existing cluster (default 0.4).
        max_children: cap on children per internal node; overflow
            tokens route through the wildcard child (default 100).
        masker / extract_structured: preprocessing, see
            :class:`repro.parsing.base.Parser`.
        cache_size: capacity of the exact-match template cache on
            masked content (0 disables it; default 65536 entries).
    """

    def __init__(
        self,
        depth: int = 2,
        similarity_threshold: float = 0.4,
        max_children: int = 100,
        masker: Masker | None = None,
        extract_structured: bool = False,
        cache_size: int = 65536,
    ) -> None:
        super().__init__(masker, extract_structured, cache_size=cache_size)
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if not 0.0 < similarity_threshold <= 1.0:
            raise ValueError(
                f"similarity_threshold must be in (0, 1], got {similarity_threshold}"
            )
        if max_children < 1:
            raise ValueError(f"max_children must be >= 1, got {max_children}")
        self.depth = depth
        self.similarity_threshold = similarity_threshold
        self.max_children = max_children
        self._length_roots: dict[int, _Node] = {}
        # template id -> (token count, routing child-key path), recorded
        # at creation time.  A cluster is only ever matched at the leaf
        # it was appended to, so this path is the template's permanent
        # tree address — replicas and reshard migrations replay it with
        # :meth:`install_template` instead of re-deriving a route from
        # the (possibly refined) current tokens.
        self._placements: dict[int, tuple[int, tuple[str, ...]]] = {}

    def _route(self, tokens: list[str]) -> _Node:
        """Walk (creating) the tree path for a token sequence."""
        node = self._length_roots.setdefault(len(tokens), _Node())
        for level in range(min(self.depth, len(tokens))):
            token = tokens[level]
            if _has_digit(token):
                token = WILDCARD
            child = node.children.get(token)
            if child is None:
                if token != WILDCARD and len(node.children) >= self.max_children:
                    token = WILDCARD
                    child = node.children.get(token)
                if child is None:
                    child = _Node()
                    node.children[token] = child
            node = child
        return node

    def _route_path(self, tokens: list[str]) -> tuple[str, ...]:
        """The child-key path :meth:`_route` walks for ``tokens``.

        Called right after :meth:`_route`, so every child on the path
        already exists and the overflow fallback can only re-trace the
        walk ``_route`` just took (the wildcard branch is taken exactly
        when the literal child is absent).
        """
        node = self._length_roots[len(tokens)]
        path: list[str] = []
        for level in range(min(self.depth, len(tokens))):
            token = tokens[level]
            if _has_digit(token) or token not in node.children:
                token = WILDCARD
            path.append(token)
            node = node.children[token]
        return tuple(path)

    def _classify(self, tokens: list[str]) -> MinedTemplate:
        leaf = self._route(tokens)
        best: MinedTemplate | None = None
        best_score = 0.0
        for cluster in leaf.clusters:
            score = cluster.similarity(tokens)
            if score > best_score:
                best, best_score = cluster, score
        if best is not None and best_score >= self.similarity_threshold:
            best.merge(tokens)
            return best
        template = self.store.create(tokens)
        leaf.clusters.append(template)
        self._placements[template.template_id] = (
            len(tokens), self._route_path(tokens)
        )
        return template

    # -- replica synchronization -------------------------------------------
    #
    # The distributed parser keeps warm DrainParser replicas (in process
    # pool workers and in the router's own shard table) and reconciles
    # them by shipping *changes* instead of whole pickled parsers.  A
    # delta is a plain dict of primitives:
    #
    #   {"base": <store length at the mark>,
    #    "created": [(id, tokens, count, placement), ...],
    #    "refined": [(id, tokens, count), ...],
    #    "counts":  [(id, count), ...]}
    #
    # ``created`` entries carry their creation-time placement so the
    # receiver rebuilds the identical tree address; ``refined`` ships
    # the current token list of templates that generalized; ``counts``
    # covers match-count drift on otherwise-unchanged templates.

    def install_template(
        self,
        tokens: list[str],
        count: int = 1,
        placement: tuple[int, tuple[str, ...]] | None = None,
    ) -> MinedTemplate:
        """Install a template mined elsewhere (replica sync / migration).

        Creates the store entry (next sequential id), sets its match
        count, and appends the cluster at ``placement`` — the
        creation-time tree address recorded by the original miner — so
        future messages classify against it exactly as they would have
        on the source shard.  Without a placement the address is
        re-derived from the tokens.
        """
        template = self.store.create(tokens)
        template.count = count
        if placement is None:
            leaf = self._route(list(tokens))
            placement = (len(tokens), self._route_path(list(tokens)))
        else:
            length, path = placement
            node = self._length_roots.setdefault(length, _Node())
            for key in path:
                child = node.children.get(key)
                if child is None:
                    child = _Node()
                    node.children[key] = child
                node = child
            leaf = node
        leaf.clusters.append(template)
        self._placements[template.template_id] = placement
        return template

    def template_export(
        self, template_id: int
    ) -> tuple[list[str], int, tuple[int, tuple[str, ...]]]:
        """One template's ``install_template`` payload (tokens, count,
        placement)."""
        template = self.store[template_id]
        placement = self._placements.get(template_id)
        if placement is None:
            placement = (len(template.tokens),
                         self._route_path(template.tokens))
        return list(template.tokens), template.count, placement

    def sync_mark(self) -> tuple[int, list[int]]:
        """Begin a sync window: snapshot counts, reset the change-set."""
        self.store.clear_dirty()
        return len(self.store), [t.count for t in self.store]

    def sync_delta(self, mark: tuple[int, list[int]]) -> dict:
        """Everything that changed since ``mark``, as a plain delta."""
        base, counts = mark
        store = self.store
        created = [
            (tid, *self.template_export(tid))
            for tid in range(base, len(store))
        ]
        refined = [
            (tid, list(store[tid].tokens), store[tid].count)
            for tid in sorted(self.store.dirty)
            if tid < base
        ]
        shipped = {tid for tid, *_ in refined}
        changed_counts = [
            (tid, store[tid].count)
            for tid in range(base)
            if store[tid].count != counts[tid] and tid not in shipped
        ]
        return {"base": base, "created": created, "refined": refined,
                "counts": changed_counts}

    def apply_sync(self, delta: dict) -> None:
        """Apply a peer's :meth:`sync_delta` to this replica."""
        store = self.store
        if delta["base"] != len(store):
            raise ValueError(
                f"sync delta expects store length {delta['base']}, "
                f"replica has {len(store)}"
            )
        for tid, tokens, count, placement in delta["created"]:
            installed = self.install_template(tokens, count, placement)
            if installed.template_id != tid:
                raise ValueError(
                    f"sync delta created id {tid}, replica assigned "
                    f"{installed.template_id}"
                )
        for tid, tokens, count in delta["refined"]:
            template = store[tid]
            template.tokens = list(tokens)
            template._joined = None
            template.count = count
            store.note_refinement(tid)
        for tid, count in delta["counts"]:
            store[tid].count = count
