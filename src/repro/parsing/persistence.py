"""Parser persistence: export and warm-restart template inventories.

Deployments restart; losing the mined template inventory on every
restart means detectors' template ids shift and models must retrain —
the id-stability concern behind the paper's DeepLog discussion.  This
module makes inventories durable:

* :func:`save_templates` / :func:`load_templates` — JSON round-trip of
  a :class:`~repro.parsing.base.TemplateStore` (ids, templates,
  counts);
* :func:`seed_drain` — rebuild a :class:`~repro.parsing.drain.
  DrainParser` whose tree already contains a saved inventory, so a
  restarted parser assigns the *same ids* to known statements and only
  mints new ids for genuinely new ones.
"""

from __future__ import annotations

import json
import os

from repro.logs.record import tokenize
from repro.parsing.base import MinedTemplate, Parser, TemplateStore
from repro.parsing.drain import DrainParser
from repro.parsing.masking import Masker

_FORMAT_VERSION = 1


def save_templates(parser: Parser, path: str | os.PathLike[str]) -> None:
    """Write a parser's template inventory to ``path`` (JSON)."""
    payload = {
        "version": _FORMAT_VERSION,
        "parser": type(parser).__name__,
        "templates": [
            {
                "id": template.template_id,
                "tokens": template.tokens,
                "count": template.count,
            }
            for template in parser.store
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def load_templates(path: str | os.PathLike[str]) -> TemplateStore:
    """Read an inventory saved by :func:`save_templates`.

    Raises ``ValueError`` on version or structure problems — a corrupt
    inventory must not silently become an empty parser.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported template inventory version: {payload.get('version')!r}"
        )
    entries = payload.get("templates")
    if not isinstance(entries, list):
        raise ValueError("template inventory missing 'templates' list")
    store = TemplateStore()
    for expected_id, entry in enumerate(entries):
        if entry.get("id") != expected_id:
            raise ValueError(
                f"template ids must be dense and ordered; "
                f"expected {expected_id}, found {entry.get('id')!r}"
            )
        template = store.create(list(entry["tokens"]))
        template.count = int(entry.get("count", 1))
    return store


def seed_drain(
    store: TemplateStore,
    *,
    depth: int = 2,
    similarity_threshold: float = 0.4,
    max_children: int = 100,
    masker: Masker | None = None,
    extract_structured: bool = False,
) -> DrainParser:
    """Build a DrainParser pre-loaded with a saved inventory.

    The returned parser's store *is* the given store object: known
    statements re-match their historical ids, and new statements
    receive fresh ids after the saved range.
    """
    parser = DrainParser(
        depth=depth,
        similarity_threshold=similarity_threshold,
        max_children=max_children,
        masker=masker,
        extract_structured=extract_structured,
    )
    parser.store = store
    for template in store:
        leaf = parser._route(template.tokens)
        leaf.clusters.append(template)
    return parser
