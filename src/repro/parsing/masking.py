"""Regex masking: the expert-crafted preprocessing step.

"During the preprocessing step, algorithms use human crafted regular
expressions to identify common variables such as URLs or IP addresses.
Preprocessing needs experts to define the regular expressions, which
has a cost in time and can lead to mistakes impacting the parsing
efficiency." (paper §IV)

Masking is therefore modelled as an explicit, optional component so the
parser benchmark (experiment X4) can ablate it: every parser accepts a
:class:`Masker`, and :func:`default_masker` provides the usual
community rule set (IPs, numbers, hex ids, paths).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.logs.record import WILDCARD


@dataclass(frozen=True)
class MaskingRule:
    """One masking regex with a descriptive name."""

    name: str
    pattern: re.Pattern[str]

    @classmethod
    def make(cls, name: str, pattern: str) -> "MaskingRule":
        return cls(name=name, pattern=re.compile(pattern))


class Masker:
    """Applies masking rules, replacing matches with the wildcard token.

    Rules run in order; earlier rules win on overlaps (the replacement
    text cannot be re-matched because the wildcard contains no word
    characters the rules look for).
    """

    def __init__(self, rules: list[MaskingRule] | None = None):
        self.rules = list(rules or [])

    def mask(self, message: str) -> str:
        for rule in self.rules:
            message = rule.pattern.sub(WILDCARD, message)
        return message

    def __len__(self) -> int:
        return len(self.rules)


#: Community-standard masking rules, mirroring the preprocessing used by
#: the LogHub / logparser benchmarks for HDFS-like corpora.
DEFAULT_RULES: list[MaskingRule] = [
    MaskingRule.make("ip_port", r"(?<![\w.])\d{1,3}(?:\.\d{1,3}){3}(?::\d+)?(?![\w.])"),
    MaskingRule.make("block_id", r"\bblk_-?\d+\b"),
    MaskingRule.make("resource_id", r"\b(?:vm|vol|req|host)-[0-9a-f\d]+\b"),
    MaskingRule.make("hex_value", r"\b0x[0-9a-fA-F]+\b"),
    MaskingRule.make("path", r"(?<!\w)/[\w./-]+"),
    MaskingRule.make("number", r"(?<![\w.])-?\d+(?:\.\d+)?(?![\w.])"),
]


def default_masker() -> Masker:
    """The expert rule set (IPs, ids, hex, paths, numbers)."""
    return Masker(list(DEFAULT_RULES))


def no_masker() -> Masker:
    """A pass-through masker: what full automation would have to use."""
    return Masker([])
