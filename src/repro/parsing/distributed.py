"""Distributed tree-based parsing (the paper's planned contribution).

"Drain method, which show the best performances, is not distributable.
We plan to provide a distributed version of research tree-based log
parsing method as we already have some encouraging results." (§IV)

:class:`DistributedDrain` runs ``shards`` independent
:class:`~repro.parsing.drain.DrainParser` instances behind a router and
adds the pieces a real deployment needs:

* **routing** — records are partitioned deterministically; the default
  routes by source name (each source's statements come from one code
  base, so its templates live on one shard), with a hash of the first
  message token for unattributed records.
* **concurrent execution** — :meth:`parse_batch` routes a batch once
  and then drains every shard's sub-sequence through a pluggable
  :class:`~repro.core.executors.ShardExecutor`: serially, on a thread
  pool, or on a process pool.  Each shard task touches only that
  shard's parser, so shards genuinely run side by side; the merge back
  into delivery order and the global-id assignment stay single-threaded
  and deterministic, which makes the output byte-identical across
  executors (and to a ``parse_record`` loop).
* **reconciliation** — shards discover templates independently, so the
  same statement may receive different local ids on different shards.
  :meth:`global_templates` merges the shard template sets into a global
  table (exact-match on template string after per-shard mining), and
  parsed events carry global ids.

Experiment X6 measures the cost of distribution (template-set agreement
with a single-instance Drain, per-shard load balance); X9 measures its
payoff (parse throughput under concurrent shard execution).
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Iterator

from repro.api.registry import register_component
from repro.core.executors import ShardExecutor, resolve_executor
from repro.logs.record import LogRecord, ParsedLog
from repro.parsing.drain import DrainParser
from repro.parsing.masking import Masker


def _stable_hash(text: str) -> int:
    """Deterministic string hash (``hash()`` is salted per process)."""
    return zlib.crc32(text.encode("utf-8"))


def _parse_shard(task: tuple[DrainParser, list[LogRecord]]):
    """One shard's batch parse, in the executor's uniform task shape.

    Returns ``(parser, parsed)`` so the caller can reinstall the parser:
    in-memory executors hand back the same (mutated-in-place) object,
    the process executor hands back the advanced copy from the worker.
    Module-level so the process executor can pickle a reference to it.
    """
    parser, group = task
    return parser, parser.parse_batch(group)


@register_component("parser", "drain-distributed")
class DistributedDrain:
    """A sharded Drain with template reconciliation.

    Args:
        shards: number of parser shards.
        route_by: ``"source"`` (default) or ``"token"`` — the partition
            key.  Routing by source keeps each code base's statements
            on one shard (best template consistency); routing by first
            token balances load for single-source streams.
        executor: a :class:`~repro.core.executors.ShardExecutor`
            instance or name (``"serial"``, ``"thread"``,
            ``"process"``); ``None`` resolves the process-wide default.
            Output is identical under every executor.
        Remaining arguments are forwarded to every shard's
        :class:`~repro.parsing.drain.DrainParser`.
    """

    def __init__(
        self,
        shards: int = 4,
        route_by: str = "source",
        depth: int = 2,
        similarity_threshold: float = 0.4,
        max_children: int = 100,
        masker: Masker | None = None,
        extract_structured: bool = False,
        cache_size: int = 65536,
        executor: str | ShardExecutor | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if route_by not in ("source", "token"):
            raise ValueError(f"route_by must be 'source' or 'token', got {route_by!r}")
        self.shards = shards
        self.route_by = route_by
        self.executor = resolve_executor(executor)
        self.parsers = [
            DrainParser(
                depth=depth,
                similarity_threshold=similarity_threshold,
                max_children=max_children,
                masker=masker,
                extract_structured=extract_structured,
                cache_size=cache_size,
            )
            for _ in range(shards)
        ]
        # Global id table: (shard, local id) -> global id, plus the
        # reverse map from template string for cross-shard dedup and
        # the first-sighting (shard, local id) per global id so the
        # current template string of a global id stays addressable.
        self._global_ids: dict[tuple[int, int], int] = {}
        self._by_template: dict[str, int] = {}
        self._gid_first_seen: list[tuple[int, int]] = []
        self._shard_loads = [0] * shards

    def shard_for(self, record: LogRecord) -> int:
        """The shard a record routes to (deterministic)."""
        if self.route_by == "source":
            key = record.source
        else:
            tokens = record.tokens
            key = tokens[0] if tokens else ""
        return _stable_hash(key) % self.shards

    def _globalize(self, shard: int, parsed: ParsedLog) -> ParsedLog:
        key = (shard, parsed.template_id)
        global_id = self._global_ids.get(key)
        if global_id is None:
            # First sighting of this shard-local template: dedup by
            # template string across shards.
            global_id = self._by_template.setdefault(
                parsed.template, len(self._by_template)
            )
            self._global_ids[key] = global_id
            if global_id == len(self._gid_first_seen):
                self._gid_first_seen.append(key)
        return ParsedLog(
            record=parsed.record,
            template_id=global_id,
            template=parsed.template,
            variables=parsed.variables,
            payload=parsed.payload,
        )

    def parse_record(self, record: LogRecord) -> ParsedLog:
        shard = self.shard_for(record)
        self._shard_loads[shard] += 1
        return self._globalize(shard, self.parsers[shard].parse_record(record))

    def parse_stream(self, records: Iterable[LogRecord]) -> Iterator[ParsedLog]:
        for record in records:
            yield self.parse_record(record)

    def parse_all(self, records: Iterable[LogRecord]) -> list[ParsedLog]:
        return list(self.parse_stream(records))

    def parse_batch(self, records: Iterable[LogRecord]) -> list[ParsedLog]:
        """Batched fast path: route once, drain the shards concurrently.

        Records are partitioned per shard up front, the non-empty shard
        groups are parsed side by side on the configured executor (each
        task drains one shard's sub-sequence through
        :meth:`~repro.parsing.base.Parser.parse_batch`, keeping that
        shard's intra-batch dedup effective), and results are
        reassembled into delivery order before globalization.  The
        merge order and global-id assignment are fixed by the routing
        decision, not by task completion order, so output — events,
        global ids, shard loads — is identical under every executor and
        to a ``parse_record`` loop: every shard sees exactly its own
        records in the same relative order, and global ids are still
        assigned at first sighting in delivery order.
        """
        records = list(records)
        shard_of = [self.shard_for(record) for record in records]
        groups: list[list[LogRecord]] = [[] for _ in range(self.shards)]
        for record, shard in zip(records, shard_of):
            groups[shard].append(record)
            self._shard_loads[shard] += 1
        busy = [shard for shard in range(self.shards) if groups[shard]]
        outcomes = self.executor.map(
            _parse_shard, [(self.parsers[shard], groups[shard]) for shard in busy]
        )
        parsed_per_shard: list[Iterator[ParsedLog] | None] = [None] * self.shards
        for shard, (parser, parsed) in zip(busy, outcomes):
            # Reinstall the shard parser: a no-op for in-memory
            # executors, the state hand-back for the process executor.
            self.parsers[shard] = parser
            parsed_per_shard[shard] = iter(parsed)
        return [
            self._globalize(shard, next(parsed_per_shard[shard]))
            for shard in shard_of
        ]

    def global_templates(self) -> list[str]:
        """The reconciled global template table (current, deduplicated).

        Shard-local templates keep generalizing after their first
        sighting, so reconciliation reads the shards' *current*
        template strings and deduplicates exact matches across shards —
        the periodic merge a deployed sharded parser would broadcast.
        (Global *ids* on parsed events remain first-sighting-stable;
        this table is the template inventory, not the id map.)
        """
        seen: dict[str, None] = {}
        for parser in self.parsers:
            for template in parser.store.templates():
                seen.setdefault(template)
        return list(seen)

    def template_string(self, global_id: int) -> str:
        """The current template string behind a global id.

        Resolves through the first-sighting shard-local template, so
        the string reflects any generalization that shard has done
        since the id was assigned.
        """
        shard, local_id = self._gid_first_seen[global_id]
        return self.parsers[shard].store[local_id].template

    @property
    def shard_loads(self) -> list[int]:
        """Records routed per shard (load-balance measurement for X6)."""
        return list(self._shard_loads)

    @property
    def template_count(self) -> int:
        return len(self._by_template)
