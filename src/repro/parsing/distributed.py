"""Distributed tree-based parsing (the paper's planned contribution).

"Drain method, which show the best performances, is not distributable.
We plan to provide a distributed version of research tree-based log
parsing method as we already have some encouraging results." (§IV)

:class:`DistributedDrain` runs ``shards`` independent
:class:`~repro.parsing.drain.DrainParser` instances behind a router and
adds the two pieces a real deployment needs:

* **routing** — records are partitioned deterministically; the default
  routes by source name (each source's statements come from one code
  base, so its templates live on one shard), with a hash of the first
  message token for unattributed records.
* **reconciliation** — shards discover templates independently, so the
  same statement may receive different local ids on different shards.
  :meth:`global_templates` merges the shard template sets into a global
  table (exact-match on template string after per-shard mining), and
  parsed events carry global ids.

Experiment X6 measures the cost of distribution: template-set agreement
with a single-instance Drain and the per-shard load balance.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Iterator

from repro.logs.record import LogRecord, ParsedLog
from repro.parsing.drain import DrainParser
from repro.parsing.masking import Masker


def _stable_hash(text: str) -> int:
    """Deterministic string hash (``hash()`` is salted per process)."""
    return zlib.crc32(text.encode("utf-8"))


class DistributedDrain:
    """A sharded Drain with template reconciliation.

    Args:
        shards: number of parser shards.
        route_by: ``"source"`` (default) or ``"token"`` — the partition
            key.  Routing by source keeps each code base's statements
            on one shard (best template consistency); routing by first
            token balances load for single-source streams.
        Remaining arguments are forwarded to every shard's
        :class:`~repro.parsing.drain.DrainParser`.
    """

    def __init__(
        self,
        shards: int = 4,
        route_by: str = "source",
        depth: int = 2,
        similarity_threshold: float = 0.4,
        max_children: int = 100,
        masker: Masker | None = None,
        extract_structured: bool = False,
        cache_size: int = 65536,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if route_by not in ("source", "token"):
            raise ValueError(f"route_by must be 'source' or 'token', got {route_by!r}")
        self.shards = shards
        self.route_by = route_by
        self.parsers = [
            DrainParser(
                depth=depth,
                similarity_threshold=similarity_threshold,
                max_children=max_children,
                masker=masker,
                extract_structured=extract_structured,
                cache_size=cache_size,
            )
            for _ in range(shards)
        ]
        # Global id table: (shard, local id) -> global id, plus the
        # reverse map from template string for cross-shard dedup.
        self._global_ids: dict[tuple[int, int], int] = {}
        self._by_template: dict[str, int] = {}
        self._shard_loads = [0] * shards

    def shard_for(self, record: LogRecord) -> int:
        """The shard a record routes to (deterministic)."""
        if self.route_by == "source":
            key = record.source
        else:
            tokens = record.tokens
            key = tokens[0] if tokens else ""
        return _stable_hash(key) % self.shards

    def _globalize(self, shard: int, parsed: ParsedLog) -> ParsedLog:
        key = (shard, parsed.template_id)
        global_id = self._global_ids.get(key)
        if global_id is None:
            # First sighting of this shard-local template: dedup by
            # template string across shards.
            global_id = self._by_template.setdefault(
                parsed.template, len(self._by_template)
            )
            self._global_ids[key] = global_id
        return ParsedLog(
            record=parsed.record,
            template_id=global_id,
            template=parsed.template,
            variables=parsed.variables,
            payload=parsed.payload,
        )

    def parse_record(self, record: LogRecord) -> ParsedLog:
        shard = self.shard_for(record)
        self._shard_loads[shard] += 1
        return self._globalize(shard, self.parsers[shard].parse_record(record))

    def parse_stream(self, records: Iterable[LogRecord]) -> Iterator[ParsedLog]:
        for record in records:
            yield self.parse_record(record)

    def parse_all(self, records: Iterable[LogRecord]) -> list[ParsedLog]:
        return list(self.parse_stream(records))

    def parse_batch(self, records: Iterable[LogRecord]) -> list[ParsedLog]:
        """Batched fast path: route once, drain each shard in one call.

        Records are partitioned per shard up front, each shard parses
        its sub-sequence through
        :meth:`~repro.parsing.base.Parser.parse_batch` (keeping the
        shard's intra-batch dedup effective), and results are
        reassembled into delivery order before globalization.  Output —
        events, global ids, shard loads — is identical to a
        ``parse_record`` loop: every shard sees exactly its own records
        in the same relative order, and global ids are still assigned
        at first sighting in delivery order.
        """
        records = list(records)
        shard_of = [self.shard_for(record) for record in records]
        groups: list[list[LogRecord]] = [[] for _ in range(self.shards)]
        for record, shard in zip(records, shard_of):
            groups[shard].append(record)
            self._shard_loads[shard] += 1
        parsed_per_shard = [
            iter(parser.parse_batch(group))
            for parser, group in zip(self.parsers, groups)
        ]
        return [
            self._globalize(shard, next(parsed_per_shard[shard]))
            for shard in shard_of
        ]

    def global_templates(self) -> list[str]:
        """The reconciled global template table (current, deduplicated).

        Shard-local templates keep generalizing after their first
        sighting, so reconciliation reads the shards' *current*
        template strings and deduplicates exact matches across shards —
        the periodic merge a deployed sharded parser would broadcast.
        (Global *ids* on parsed events remain first-sighting-stable;
        this table is the template inventory, not the id map.)
        """
        seen: dict[str, None] = {}
        for parser in self.parsers:
            for template in parser.store.templates():
                seen.setdefault(template)
        return list(seen)

    @property
    def shard_loads(self) -> list[int]:
        """Records routed per shard (load-balance measurement for X6)."""
        return list(self._shard_loads)

    @property
    def template_count(self) -> int:
        return len(self._by_template)
