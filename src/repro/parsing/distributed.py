"""Distributed tree-based parsing (the paper's planned contribution).

"Drain method, which show the best performances, is not distributable.
We plan to provide a distributed version of research tree-based log
parsing method as we already have some encouraging results." (§IV)

:class:`DistributedDrain` runs ``shards`` independent
:class:`~repro.parsing.drain.DrainParser` instances behind a router and
adds the pieces a real deployment needs:

* **routing** — records are partitioned deterministically with
  rendezvous (highest-random-weight) hashing over the partition key;
  the default routes by source name (each source's statements come
  from one code base, so its templates live on one shard), with the
  first message token as the key for unattributed records.  Rendezvous
  hashing makes the shard count elastic: growing N → N+1 shards
  relocates only ~1/(N+1) of the keyspace, and shrinking relocates
  only the keys owned by the removed shards.
* **elastic resharding** — :meth:`resize` changes the shard count
  *live*: the template state owned by every relocated key is migrated
  to its new shard (same tree address, same match counts), and the
  global-id table is remapped in place, so global ids — and therefore
  every downstream alert — are byte-identical across a reshard.
* **concurrent execution** — :meth:`parse_batch` routes a batch once
  and then drains every shard's sub-sequence through a pluggable
  :class:`~repro.core.executors.ShardExecutor`: serially, on a thread
  pool, or on a process pool.  Each shard task touches only that
  shard's parser, so shards genuinely run side by side; the merge back
  into delivery order and the global-id assignment stay single-threaded
  and deterministic, which makes the output byte-identical across
  executors (and to a ``parse_record`` loop).  Under the process
  executor each shard is pinned to a warm worker
  (:meth:`~repro.core.executors.ShardExecutor.map_sticky`) and only
  template-store **deltas** cross the process boundary after the first
  batch — serialization cost is proportional to what changed, not to
  the accumulated template state.
* **reconciliation** — shards discover templates independently, so the
  same statement may receive different local ids on different shards.
  :meth:`global_templates` merges the shard template sets into a global
  table (exact-match on template string after per-shard mining), and
  parsed events carry global ids.

Experiment X6 measures the cost of distribution (template-set agreement
with a single-instance Drain, per-shard load balance); X9 measures its
payoff (parse throughput under concurrent shard execution); X12
measures elasticity (reshard cost and the throughput reclaimed by
fixing a mis-sized static shard count).
"""

from __future__ import annotations

import copy
import itertools
import pickle
import time
import zlib
from collections import OrderedDict
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.api.registry import register_component
from repro.core.executors import ShardExecutor, resolve_executor
from repro.logs.record import LogRecord, ParsedLog
from repro.parsing.drain import DrainParser
from repro.parsing.masking import Masker

_MASK64 = (1 << 64) - 1


def _stable_hash(text: str) -> int:
    """Deterministic string hash (``hash()`` is salted per process).

    crc32 alone is unusable as a rendezvous weight: it is linear over
    GF(2), so the weights of two shard ids differ by a *key-independent*
    XOR constant and one shard structurally captures far more than its
    fair share (measured: half the keyspace at three shards).  The
    splitmix64-style avalanche finalizer breaks that linearity — after
    mixing, the per-shard weights of a key are effectively independent.
    """
    mixed = zlib.crc32(text.encode("utf-8"))
    mixed = (mixed * 0xFF51AFD7ED558CCD) & _MASK64
    mixed = ((mixed ^ (mixed >> 33)) * 0xC4CEB9FE1A85EC53) & _MASK64
    return mixed ^ (mixed >> 33)


def rendezvous_shard(key: str, shards: "int | Iterable[int]") -> int:
    """Rendezvous (HRW) placement of ``key`` over a shard id set.

    Every (key, shard) pair gets an independent deterministic weight
    and the key lives on the heaviest shard.  Properties the router
    depends on:

    * placement is a pure function of the key and the shard *ids* —
      independent of enumeration order (ties break to the smallest id);
    * adding shard N+1 relocates exactly the keys whose new weight
      beats all previous ones (~1/(N+1) of the keyspace in
      expectation); every other key keeps its argmax untouched;
    * removing a shard relocates only the keys it owned.

    ``shards`` is a count (meaning ids ``0..shards-1``) or an explicit
    iterable of ids.
    """
    ids = range(shards) if isinstance(shards, int) else shards
    best = -1
    best_weight = -1
    for shard in ids:
        weight = _stable_hash(f"{key}\x00{shard}")
        if weight > best_weight or (weight == best_weight and shard < best):
            best, best_weight = shard, weight
    if best < 0:
        raise ValueError("rendezvous_shard needs at least one shard id")
    return best


def _parse_shard(task: "tuple[DrainParser, list[LogRecord]]"):
    """One shard's batch parse, in the executor's uniform task shape.

    Returns ``(parser, parsed)`` so the caller can reinstall the parser:
    in-memory executors hand back the same (mutated-in-place) object.
    Module-level so executors can pickle a reference to it.
    """
    parser, group = task
    return parser, parser.parse_batch(group)


#: Warm per-worker replica table: (router token, shard) -> (version,
#: DrainParser).  Lives in the pool worker's module globals; bounded so
#: abandoned routers (dead pipelines, deep-copied probes) can only cost
#: a resync, never unbounded memory.
_REPLICA_STATES: "OrderedDict[tuple[int, int], tuple[int, DrainParser]]" = (
    OrderedDict()
)
_REPLICA_CAP = 128

#: Router identity for worker-state keying; deep copies take a fresh
#: token so read-only probes can never touch a live router's replicas.
_ROUTER_TOKENS = itertools.count(1)


def _parse_shard_synced(task):
    """One shard's batch parse against a warm worker-resident replica.

    ``task`` is ``(token, shard, payload, group)`` where ``payload``
    brings the replica up to the router's version first:

    * ``("full", version, blob)`` — replace the replica with a pickled
      parser (first contact, or after the router lost track of us);
    * ``("ops", base, version, blob)`` — apply a pickled list of
      template-store deltas (reshard migrations) to version ``base``;
    * ``("none", version)`` — the replica is already current.

    Returns ``("ok", parsed, delta_bytes, new_version)`` — the parse
    results plus the pickled delta of everything this batch changed —
    or ``("resync",)`` when the replica is missing or at the wrong
    version, asking the router to resend in full.  On a parse failure
    the replica is dropped (it was mutated mid-batch), so a poisoned
    batch costs one resync instead of silent state divergence.
    """
    token, shard, payload, group = task
    state_key = (token, shard)
    state = _REPLICA_STATES.get(state_key)
    tag = payload[0]
    if tag == "full":
        version = payload[1]
        parser = pickle.loads(payload[2])
    else:
        if state is None:
            return ("resync",)
        held_version, parser = state
        if tag == "ops":
            base, version = payload[1], payload[2]
            if held_version != base:
                return ("resync",)
            for delta in pickle.loads(payload[3]):
                parser.apply_sync(delta)
        else:  # "none"
            version = payload[1]
            if held_version != version:
                return ("resync",)
    _REPLICA_STATES.pop(state_key, None)
    mark = parser.sync_mark()
    parsed = parser.parse_batch(group)
    delta = parser.sync_delta(mark)
    new_version = version + 1
    _REPLICA_STATES[state_key] = (new_version, parser)
    while len(_REPLICA_STATES) > _REPLICA_CAP:
        _REPLICA_STATES.popitem(last=False)
    return ("ok", parsed, pickle.dumps(delta, pickle.HIGHEST_PROTOCOL),
            new_version)


@dataclass(frozen=True)
class ReshardReport:
    """What one :meth:`DistributedDrain.resize` did and what it cost."""

    old_shards: int
    new_shards: int
    keys_total: int
    keys_moved: int
    templates_moved: int
    bytes_moved: int
    seconds: float


@register_component("parser", "drain-distributed")
class DistributedDrain:
    """A sharded Drain with template reconciliation and live resizing.

    Args:
        shards: number of parser shards (the *initial* count;
            :meth:`resize` changes it live).
        route_by: ``"source"`` (default) or ``"token"`` — the partition
            key.  Routing by source keeps each code base's statements
            on one shard (best template consistency); routing by first
            token balances load for single-source streams.
        executor: a :class:`~repro.core.executors.ShardExecutor`
            instance or name (``"serial"``, ``"thread"``,
            ``"process"``); ``None`` resolves the process-wide default.
            Output is identical under every executor.
        Remaining arguments are forwarded to every shard's
        :class:`~repro.parsing.drain.DrainParser`.
    """

    def __init__(
        self,
        shards: int = 4,
        route_by: str = "source",
        depth: int = 2,
        similarity_threshold: float = 0.4,
        max_children: int = 100,
        masker: Masker | None = None,
        extract_structured: bool = False,
        cache_size: int = 65536,
        executor: str | ShardExecutor | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if route_by not in ("source", "token"):
            raise ValueError(f"route_by must be 'source' or 'token', got {route_by!r}")
        self.shards = shards
        self.route_by = route_by
        self.executor = resolve_executor(executor)
        self._parser_kwargs = dict(
            depth=depth,
            similarity_threshold=similarity_threshold,
            max_children=max_children,
            masker=masker,
            extract_structured=extract_structured,
            cache_size=cache_size,
        )
        self.parsers = [DrainParser(**self._parser_kwargs)
                        for _ in range(shards)]
        # Global id table: (shard, local id) -> global id, plus the
        # reverse map from template string for cross-shard dedup and
        # the first-sighting (shard, local id) per global id so the
        # current template string of a global id stays addressable.
        self._global_ids: dict[tuple[int, int], int] = {}
        self._by_template: dict[str, int] = {}
        self._gid_first_seen: list[tuple[int, int]] = []
        self._shard_loads = [0] * shards
        # Elasticity bookkeeping: per-key record counts (the reshard
        # planner's load model), the first-sighting template ownership
        # per key (what a relocated key takes with it), and the
        # placement memo invalidated on every resize.
        self._key_loads: dict[str, int] = {}
        self._templates_by_key: dict[str, list[tuple[int, int]]] = {}
        self._route_cache: dict[str, int] = {}
        self.last_reshard: ReshardReport | None = None
        # Delta-sync bookkeeping for warm process-pool replicas: the
        # router-side replica version per shard, the version we believe
        # the worker replica holds (None = must send full state), and
        # the queued deltas covering (worker version, version].
        self._sync_token = next(_ROUTER_TOKENS)
        self._version = [0] * shards
        self._worker_version: list[int | None] = [None] * shards
        self._pending: list[list[dict]] = [[] for _ in range(shards)]
        self._sync_stats = {
            "full_syncs": 0,
            "delta_syncs": 0,
            "bytes_to_workers": 0,
            "bytes_from_workers": 0,
        }

    # -- routing ------------------------------------------------------------

    def route_key(self, record: LogRecord) -> str:
        """The partition key a record routes by (deterministic)."""
        if self.route_by == "source":
            return record.source
        tokens = record.tokens
        return tokens[0] if tokens else ""

    def _place(self, key: str) -> int:
        shard = self._route_cache.get(key)
        if shard is None:
            shard = rendezvous_shard(key, self.shards)
            if len(self._route_cache) < 65536:
                self._route_cache[key] = shard
        return shard

    def shard_for(self, record: LogRecord) -> int:
        """The shard a record routes to (deterministic)."""
        return self._place(self.route_key(record))

    # -- parsing ------------------------------------------------------------

    def _globalize(self, shard: int, parsed: ParsedLog, key: str) -> ParsedLog:
        local = (shard, parsed.template_id)
        global_id = self._global_ids.get(local)
        if global_id is None:
            # First sighting of this shard-local template: dedup by
            # template string across shards, and record which routing
            # key owns it (what a reshard must migrate with the key).
            global_id = self._by_template.setdefault(
                parsed.template, len(self._by_template)
            )
            self._global_ids[local] = global_id
            if global_id == len(self._gid_first_seen):
                self._gid_first_seen.append(local)
            self._templates_by_key.setdefault(key, []).append(local)
        return ParsedLog(
            record=parsed.record,
            template_id=global_id,
            template=parsed.template,
            variables=parsed.variables,
            payload=parsed.payload,
        )

    def parse_record(self, record: LogRecord) -> ParsedLog:
        key = self.route_key(record)
        shard = self._place(key)
        if not self.executor.shares_memory:
            # Direct parsing advances the router-side replica past
            # anything expressible as a queued delta; the worker
            # replica (if any) is stale until the next full sync.
            self._version[shard] += 1
            self._worker_version[shard] = None
            self._pending[shard] = []
        parsed = self._globalize(
            shard, self.parsers[shard].parse_record(record), key
        )
        self._shard_loads[shard] += 1
        self._key_loads[key] = self._key_loads.get(key, 0) + 1
        return parsed

    def parse_stream(self, records: Iterable[LogRecord]) -> Iterator[ParsedLog]:
        for record in records:
            yield self.parse_record(record)

    def parse_all(self, records: Iterable[LogRecord]) -> list[ParsedLog]:
        return list(self.parse_stream(records))

    def parse_batch(self, records: Iterable[LogRecord]) -> list[ParsedLog]:
        """Batched fast path: route once, drain the shards concurrently.

        Records are partitioned per shard up front, the non-empty shard
        groups are parsed side by side on the configured executor (each
        task drains one shard's sub-sequence through
        :meth:`~repro.parsing.base.Parser.parse_batch`, keeping that
        shard's intra-batch dedup effective), and results are
        reassembled into delivery order before globalization.  The
        merge order and global-id assignment are fixed by the routing
        decision, not by task completion order, so output — events,
        global ids, shard loads — is identical under every executor and
        to a ``parse_record`` loop: every shard sees exactly its own
        records in the same relative order, and global ids are still
        assigned at first sighting in delivery order.

        Load accounting is deferred until every shard outcome is back:
        a poisoned batch (any shard task raising) leaves
        :attr:`shard_loads` and the per-key load model exactly as they
        were, so the autoscaler's imbalance signal never counts records
        that were not parsed.
        """
        records = list(records)
        keys = [self.route_key(record) for record in records]
        shard_of = [self._place(key) for key in keys]
        groups: list[list[LogRecord]] = [[] for _ in range(self.shards)]
        for record, shard in zip(records, shard_of):
            groups[shard].append(record)
        busy = [shard for shard in range(self.shards) if groups[shard]]
        if self.executor.shares_memory:
            outcomes = self.executor.map(
                _parse_shard,
                [(self.parsers[shard], groups[shard]) for shard in busy],
            )
            parsed_lists = []
            for shard, (parser, parsed) in zip(busy, outcomes):
                # Reinstall the shard parser (a no-op for in-memory
                # executors, kept for the uniform executor contract).
                self.parsers[shard] = parser
                parsed_lists.append(parsed)
        else:
            parsed_lists = self._parse_busy_synced(busy, groups)
        parsed_per_shard: list[Iterator[ParsedLog] | None] = [None] * self.shards
        for shard, parsed in zip(busy, parsed_lists):
            parsed_per_shard[shard] = iter(parsed)
        for shard in busy:
            self._shard_loads[shard] += len(groups[shard])
        key_loads = self._key_loads
        for key in keys:
            key_loads[key] = key_loads.get(key, 0) + 1
        return [
            self._globalize(shard, next(parsed_per_shard[shard]), key)
            for shard, key in zip(shard_of, keys)
        ]

    # -- warm-replica delta sync (process executor) -------------------------

    def _sync_payload(self, shard: int):
        version = self._version[shard]
        worker_version = self._worker_version[shard]
        if worker_version == version and not self._pending[shard]:
            return ("none", version)
        if worker_version is not None and self._pending[shard]:
            blob = pickle.dumps(self._pending[shard],
                                pickle.HIGHEST_PROTOCOL)
            self._sync_stats["bytes_to_workers"] += len(blob)
            self._sync_stats["delta_syncs"] += 1
            return ("ops", worker_version, version, blob)
        blob = pickle.dumps(self.parsers[shard], pickle.HIGHEST_PROTOCOL)
        self._sync_stats["bytes_to_workers"] += len(blob)
        self._sync_stats["full_syncs"] += 1
        self._pending[shard] = []
        return ("full", version, blob)

    def _parse_busy_synced(self, busy: list[int], groups) -> list[list[ParsedLog]]:
        """Fan busy shards out to their sticky workers, delta-synced.

        Each worker brings its warm replica to the router's version,
        parses, and sends back only the delta; the router applies that
        delta to its own authoritative replica so ``global_templates``
        / ``template_string`` / future full syncs stay exact.  Workers
        that lost their replica answer ``resync`` and are retried once
        with full state.  If any shard task raises, every busy shard's
        worker is marked unsynced (full resend next batch) and no
        router state has changed — the batch is a clean no-op.
        """
        token = self._sync_token
        tasks = [(token, shard, self._sync_payload(shard), groups[shard])
                 for shard in busy]
        try:
            results = self.executor.map_sticky(
                _parse_shard_synced, tasks, busy
            )
            retries = [i for i, result in enumerate(results)
                       if result[0] == "resync"]
            if retries:
                for i in retries:
                    self._worker_version[busy[i]] = None
                retry_tasks = [
                    (token, busy[i], self._sync_payload(busy[i]),
                     groups[busy[i]])
                    for i in retries
                ]
                retry_results = self.executor.map_sticky(
                    _parse_shard_synced, retry_tasks,
                    [busy[i] for i in retries],
                )
                for i, result in zip(retries, retry_results):
                    if result[0] == "resync":
                        raise RuntimeError(
                            f"shard {busy[i]} worker refused a full sync"
                        )
                    results[i] = result
        except Exception:
            for shard in busy:
                self._worker_version[shard] = None
                self._pending[shard] = []
            raise
        parsed_lists = []
        for shard, (_, parsed, delta_bytes, new_version) in zip(busy, results):
            self._sync_stats["bytes_from_workers"] += len(delta_bytes)
            self.parsers[shard].apply_sync(pickle.loads(delta_bytes))
            self._version[shard] = new_version
            self._worker_version[shard] = new_version
            self._pending[shard] = []
            parsed_lists.append(parsed)
        return parsed_lists

    @property
    def sync_stats(self) -> dict[str, int]:
        """Replica delta-sync counters (bytes and sync kinds)."""
        return dict(self._sync_stats)

    # -- elastic resharding -------------------------------------------------

    def predicted_imbalance(self, shards: int) -> float:
        """The load imbalance the current traffic would see at ``shards``.

        Replays the per-key load model through rendezvous placement
        over ``shards`` shards and returns max/mean shard load — the
        same statistic the autoscaler reads from :attr:`shard_loads`.
        Returns 1.0 (perfectly balanced) with no traffic observed.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        total = sum(self._key_loads.values())
        if total == 0:
            return 1.0
        loads = [0] * shards
        for key, count in self._key_loads.items():
            loads[rendezvous_shard(key, shards)] += count
        return max(loads) / (total / shards)

    @property
    def distinct_keys(self) -> int:
        """Distinct routing keys observed (an upper bound on useful shards)."""
        return len(self._key_loads)

    def resize(self, shards: int) -> ReshardReport:
        """Change the shard count live, migrating relocated template state.

        Rendezvous routing relocates only the keys whose argmax changes
        (~``1/new_shards`` of the keyspace on grow; exactly the removed
        shards' keys on shrink).  For each relocated key, every
        template it first-sighted is copied to the destination shard —
        same tokens, same match count, same creation-time tree address
        — and the global-id table maps the destination's new local id
        to the *existing* global id, so parsed events and alerts are
        byte-identical across the reshard.  Sources keep their copies
        (other keys on the shard may share a leaf), which keeps
        :meth:`template_string` resolvable for every pre-reshard global
        id; on shrink, first-sighting pointers into removed shards are
        repointed at the migrated copies before the shards are dropped.

        Migrations are queued as template-store deltas for the warm
        process-pool replicas, so a reshard ships only what moved —
        never whole parsers.  Returns a :class:`ReshardReport`;
        ``bytes_moved`` is the serialized size of those deltas (also
        computed under in-memory executors, as the cost model).
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        start = time.perf_counter()
        old = self.shards
        keys_total = len(self._key_loads)
        if shards == old:
            report = ReshardReport(old, shards, keys_total, 0, 0, 0,
                                   time.perf_counter() - start)
            self.last_reshard = report
            return report
        if shards > old:
            for _ in range(old, shards):
                self.parsers.append(DrainParser(**self._parser_kwargs))
                self._shard_loads.append(0)
                self._version.append(0)
                self._worker_version.append(None)
                self._pending.append([])
        moved_keys = sorted(
            key
            for key in set(self._key_loads) | set(self._templates_by_key)
            if rendezvous_shard(key, old) != rendezvous_shard(key, shards)
        )
        mapping: dict[tuple[int, int], tuple[int, int]] = {}
        deltas: dict[int, dict] = {}
        templates_moved = 0
        for key in moved_keys:
            destination = rendezvous_shard(key, shards)
            owned = self._templates_by_key.get(key, [])
            for index, local in enumerate(owned):
                source_shard, local_id = local
                exported = self.parsers[source_shard].template_export(local_id)
                tokens, count, placement = exported
                delta = deltas.get(destination)
                if delta is None:
                    delta = deltas[destination] = {
                        "base": len(self.parsers[destination].store),
                        "created": [], "refined": [], "counts": [],
                    }
                installed = self.parsers[destination].install_template(
                    tokens, count, placement
                )
                delta["created"].append(
                    (installed.template_id, tokens, count, placement)
                )
                new_local = (destination, installed.template_id)
                global_id = self._global_ids.get(local)
                if global_id is not None:
                    self._global_ids[new_local] = global_id
                    if self._gid_first_seen[global_id] == local:
                        # The first-sighting pointer follows the owning
                        # key's copy: the destination replica is the one
                        # the key's traffic keeps generalizing, and a
                        # later shrink can only map pointers that track
                        # their owner's current shard.
                        self._gid_first_seen[global_id] = new_local
                mapping[local] = new_local
                owned[index] = new_local
                templates_moved += 1
        bytes_moved = sum(
            len(pickle.dumps([delta], pickle.HIGHEST_PROTOCOL))
            for delta in deltas.values()
        )
        for destination, delta in deltas.items():
            self._version[destination] += 1
            if self._worker_version[destination] is not None:
                self._pending[destination].append(delta)
        if shards < old:
            for global_id, local in enumerate(self._gid_first_seen):
                if local[0] >= shards:
                    replacement = mapping.get(local)
                    if replacement is None:
                        raise RuntimeError(
                            f"global id {global_id} first seen on removed "
                            f"shard {local[0]} has no migrated copy"
                        )
                    self._gid_first_seen[global_id] = replacement
            for local in [entry for entry in self._global_ids
                          if entry[0] >= shards]:
                del self._global_ids[local]
            del self.parsers[shards:]
            del self._version[shards:]
            del self._worker_version[shards:]
            del self._pending[shards:]
        self.shards = shards
        self._route_cache.clear()
        loads = [0] * shards
        for key, count in self._key_loads.items():
            loads[rendezvous_shard(key, shards)] += count
        self._shard_loads = loads
        report = ReshardReport(
            old_shards=old,
            new_shards=shards,
            keys_total=keys_total,
            keys_moved=len(moved_keys),
            templates_moved=templates_moved,
            bytes_moved=bytes_moved,
            seconds=time.perf_counter() - start,
        )
        self.last_reshard = report
        return report

    def __deepcopy__(self, memo: dict) -> "DistributedDrain":
        # Snapshots (read-only measurement probes) must never reuse the
        # live router's worker replicas: they take a fresh sync token
        # and cold worker versions, so their first process-pool batch —
        # if they ever run one — starts from a full sync.
        cls = self.__class__
        clone = cls.__new__(cls)
        memo[id(self)] = clone
        for name, value in self.__dict__.items():
            setattr(clone, name, copy.deepcopy(value, memo))
        clone._sync_token = next(_ROUTER_TOKENS)
        clone._worker_version = [None] * clone.shards
        clone._pending = [[] for _ in range(clone.shards)]
        return clone

    # -- reconciliation -----------------------------------------------------

    def global_templates(self) -> list[str]:
        """The reconciled global template table (current, deduplicated).

        Shard-local templates keep generalizing after their first
        sighting, so reconciliation reads the shards' *current*
        template strings and deduplicates exact matches across shards —
        the periodic merge a deployed sharded parser would broadcast.
        (Global *ids* on parsed events remain first-sighting-stable;
        this table is the template inventory, not the id map.)
        """
        seen: dict[str, None] = {}
        for parser in self.parsers:
            for template in parser.store.templates():
                seen.setdefault(template)
        return list(seen)

    def template_string(self, global_id: int) -> str:
        """The current template string behind a global id.

        Resolves through the first-sighting shard-local template, so
        the string reflects any generalization that shard has done
        since the id was assigned.
        """
        shard, local_id = self._gid_first_seen[global_id]
        return self.parsers[shard].store[local_id].template

    @property
    def shard_loads(self) -> list[int]:
        """Records routed per shard (load-balance measurement for X6).

        After a :meth:`resize` the history is re-attributed under the
        new placement, so the imbalance the autoscaler reads reflects
        the *current* routing, not a mix of regimes.
        """
        return list(self._shard_loads)

    @property
    def template_count(self) -> int:
        return len(self._by_template)
