"""Log parsing: template miners, masking, and distribution.

Implements the paper's §IV study set:

* online (streaming) parsers — :class:`~repro.parsing.drain.DrainParser`,
  :class:`~repro.parsing.spell.SpellParser`,
  :class:`~repro.parsing.lenma.LenMaParser`,
  :class:`~repro.parsing.shiso.ShisoParser`,
  :class:`~repro.parsing.logram.LogramParser`;
* batch parsers — :class:`~repro.parsing.iplom.IplomParser`,
  :class:`~repro.parsing.slct.SlctParser`,
  :class:`~repro.parsing.logcluster.LogClusterParser`;
* the regex *masking* preprocessing step every published parser relies
  on (:mod:`repro.parsing.masking`), kept explicit and optional because
  the paper identifies it as an automation limit;
* the distributed tree-based parser the paper plans
  (:mod:`repro.parsing.distributed`).

All parsers share the :class:`~repro.parsing.base.Parser` API: feed
:class:`~repro.logs.record.LogRecord` objects, receive
:class:`~repro.logs.record.ParsedLog` events.
"""

from repro.parsing.base import (
    BatchParser,
    MinedTemplate,
    OnlineParser,
    Parser,
    TemplateCache,
    TemplateStore,
    parse_in_batches,
)
from repro.parsing.masking import MaskingRule, Masker, default_masker, no_masker
from repro.parsing.drain import DrainParser
from repro.parsing.spell import SpellParser
from repro.parsing.lenma import LenMaParser
from repro.parsing.shiso import ShisoParser
from repro.parsing.logram import LogramParser
from repro.parsing.iplom import IplomParser
from repro.parsing.slct import SlctParser
from repro.parsing.logcluster import LogClusterParser
from repro.parsing.distributed import DistributedDrain
from repro.parsing.persistence import load_templates, save_templates, seed_drain

ONLINE_PARSERS = {
    "drain": DrainParser,
    "spell": SpellParser,
    "lenma": LenMaParser,
    "shiso": ShisoParser,
    "logram": LogramParser,
}

BATCH_PARSERS = {
    "iplom": IplomParser,
    "slct": SlctParser,
    "logcluster": LogClusterParser,
}

__all__ = [
    "BATCH_PARSERS",
    "BatchParser",
    "DistributedDrain",
    "DrainParser",
    "IplomParser",
    "LenMaParser",
    "LogClusterParser",
    "LogramParser",
    "Masker",
    "MaskingRule",
    "MinedTemplate",
    "ONLINE_PARSERS",
    "OnlineParser",
    "Parser",
    "ShisoParser",
    "SlctParser",
    "SpellParser",
    "TemplateStore",
    "default_masker",
    "load_templates",
    "no_masker",
    "save_templates",
    "seed_drain",
]
