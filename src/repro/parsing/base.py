"""Shared parser machinery: templates, stores, and the Parser API.

A template miner groups log messages into log classes and decides, per
token position, whether the position is static (part of the template)
or variable.  :class:`MinedTemplate` is the mutable cluster object the
miners maintain; :class:`TemplateStore` assigns stable ids and tracks
evolution; :class:`Parser` is the user-facing API shared by online and
batch algorithms.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.logs.record import LogRecord, ParsedLog, WILDCARD, tokenize
from repro.logs.structured import extract_structured_payload
from repro.parsing.masking import Masker, no_masker


class MinedTemplate:
    """One discovered log class.

    ``tokens`` is the current template token list (``<*>`` marks
    variable positions); it can only *generalize* over time — once a
    position becomes a wildcard it stays one.  ``count`` tracks how many
    messages matched.
    """

    __slots__ = ("template_id", "tokens", "count")

    def __init__(self, template_id: int, tokens: Sequence[str], count: int = 1):
        self.template_id = template_id
        self.tokens = list(tokens)
        self.count = count

    @property
    def template(self) -> str:
        return " ".join(self.tokens)

    def merge(self, tokens: Sequence[str]) -> None:
        """Generalize this template against a new token sequence.

        Positions that disagree become wildcards.  Lengths must match —
        miners only merge same-length sequences (per the standard Drain
        assumption that a template has a fixed token count).
        """
        if len(tokens) != len(self.tokens):
            raise ValueError(
                f"cannot merge length {len(tokens)} into template of "
                f"length {len(self.tokens)}"
            )
        for index, (mine, theirs) in enumerate(zip(self.tokens, tokens)):
            if mine != theirs:
                self.tokens[index] = WILDCARD
        self.count += 1

    def extract_variables(self, tokens: Sequence[str]) -> tuple[str, ...]:
        """Pull the variable values of ``tokens`` under this template."""
        return tuple(
            value
            for position, value in zip(self.tokens, tokens)
            if position == WILDCARD
        )

    def similarity(self, tokens: Sequence[str]) -> float:
        """Fraction of positions where the static token matches.

        Drain's ``seqDist``: wildcards do not count as matches, so a
        fully-wildcarded template has similarity 0 and never greedily
        absorbs everything.
        """
        if len(tokens) != len(self.tokens):
            return 0.0
        if not tokens:
            return 1.0
        matches = sum(
            1
            for mine, theirs in zip(self.tokens, tokens)
            if mine == theirs and mine != WILDCARD
        )
        return matches / len(tokens)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MinedTemplate(id={self.template_id}, {self.template!r}, n={self.count})"


class TemplateStore:
    """Assigns template ids and records every mined template.

    The store is append-only: ids are never reused, and templates that
    later generalize keep their id — downstream detectors depend on id
    stability (the paper's DeepLog discussion: the event-index vector
    length is the number of known templates).
    """

    def __init__(self) -> None:
        self._templates: list[MinedTemplate] = []

    def create(self, tokens: Sequence[str]) -> MinedTemplate:
        template = MinedTemplate(template_id=len(self._templates), tokens=tokens)
        self._templates.append(template)
        return template

    def __len__(self) -> int:
        return len(self._templates)

    def __iter__(self) -> Iterator[MinedTemplate]:
        return iter(self._templates)

    def __getitem__(self, template_id: int) -> MinedTemplate:
        return self._templates[template_id]

    def templates(self) -> list[str]:
        """The current template strings, in id order."""
        return [template.template for template in self._templates]


class Parser:
    """Common parser API.

    ``parse_record`` is the single-record entry point.  The optional
    preprocessing chain is applied in paper order: first the
    structured-payload extraction step (§IV recommendation), then the
    regex masker.  Both are off by default so that experiments measure
    the raw algorithms unless they opt in.
    """

    def __init__(
        self,
        masker: Masker | None = None,
        extract_structured: bool = False,
    ) -> None:
        self.masker = masker if masker is not None else no_masker()
        self.extract_structured = extract_structured
        self.store = TemplateStore()

    # -- to be provided by concrete miners ---------------------------------

    def _classify(self, tokens: list[str]) -> MinedTemplate:
        """Map a token sequence to its (possibly new) template."""
        raise NotImplementedError

    # -- public API ---------------------------------------------------------

    def parse_record(self, record: LogRecord) -> ParsedLog:
        """Parse one record into a structured event."""
        message = record.message
        payload: dict[str, object] = {}
        if self.extract_structured:
            extraction = extract_structured_payload(message)
            message = extraction.text
            payload = dict(extraction.payload)
        masked = self.masker.mask(message)
        tokens = tokenize(masked)
        template = self._classify(tokens)
        # Classification runs on masked tokens, but variable *values*
        # must come from the original message (masking would otherwise
        # erase them and quantitative detection with it).  Positions
        # align whenever masking preserved the token count, which the
        # default rules do (they never match across whitespace).
        original_tokens = tokenize(message)
        value_tokens = (
            original_tokens if len(original_tokens) == len(tokens) else tokens
        )
        return ParsedLog(
            record=record,
            template_id=template.template_id,
            template=template.template,
            variables=template.extract_variables(value_tokens),
            payload=payload,
        )

    def parse_stream(self, records: Iterable[LogRecord]) -> Iterator[ParsedLog]:
        """Parse a stream lazily, in delivery order."""
        for record in records:
            yield self.parse_record(record)

    def parse_all(self, records: Iterable[LogRecord]) -> list[ParsedLog]:
        """Parse and materialize a full corpus."""
        return list(self.parse_stream(records))

    @property
    def template_count(self) -> int:
        return len(self.store)


class OnlineParser(Parser):
    """Marker base for streaming miners (discover templates on the job)."""


class BatchParser(Parser):
    """Base for batch miners: require a :meth:`fit` pass before parsing.

    ``fit`` mines templates from a corpus; ``parse_record`` then
    assigns messages to the mined templates (unseen shapes fall back to
    a one-off template, counted as a parse miss by the metrics).
    """

    def __init__(self, masker: Masker | None = None,
                 extract_structured: bool = False) -> None:
        super().__init__(masker, extract_structured)
        self._fitted = False

    def _mine(self, token_lists: list[list[str]]) -> None:
        """Populate ``self.store`` from the training token lists."""
        raise NotImplementedError

    def fit(self, records: Iterable[LogRecord]) -> "BatchParser":
        """Mine templates from a corpus (one batch pass)."""
        token_lists = []
        for record in records:
            message = record.message
            if self.extract_structured:
                message = extract_structured_payload(message).text
            token_lists.append(tokenize(self.masker.mask(message)))
        self._mine(token_lists)
        self._fitted = True
        return self

    def _classify(self, tokens: list[str]) -> MinedTemplate:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before parsing; "
                "call fit(records) first"
            )
        best: MinedTemplate | None = None
        best_score = -1.0
        for template in self.store:
            score = template.similarity(tokens)
            if score > best_score and len(template.tokens) == len(tokens):
                best, best_score = template, score
        if best is not None and best_score > 0.0:
            return best
        # Unseen shape: emit a one-off, fully-static template.
        return self.store.create(tokens)
