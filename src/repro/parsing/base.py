"""Shared parser machinery: templates, stores, caching, and the Parser API.

A template miner groups log messages into log classes and decides, per
token position, whether the position is static (part of the template)
or variable.  :class:`MinedTemplate` is the mutable cluster object the
miners maintain; :class:`TemplateStore` assigns stable ids and tracks
evolution; :class:`Parser` is the user-facing API shared by online and
batch algorithms.

Two fast-path layers exploit the repetitiveness of real log traffic
(the same statements fire over and over):

* :class:`TemplateCache` — an exact-match memo from *masked* message
  content to the mined template, letting repeats skip the miner's
  classification (for Drain: the tree walk and similarity scan)
  entirely.  Entries are validated against the store's ``generation``
  counter, which advances whenever the template space changes (a new
  template is created or an existing one generalizes), so a hit is
  served only when classification provably cannot have changed — the
  cached result is byte-identical to what the miner would return.
* :meth:`Parser.parse_batch` — the batched entry point.  On top of the
  persistent cache it deduplicates identical *raw* messages inside the
  batch, so repeats also skip masking, tokenization, and variable
  extraction.  Output parity with a ``parse_record`` loop is exact:
  same templates, ids, variables, and counts, in the same order.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Iterator, Sequence

from repro.logs.record import LogRecord, ParsedLog, WILDCARD, tokenize
from repro.logs.structured import extract_structured_payload
from repro.parsing.masking import Masker, no_masker


class MinedTemplate:
    """One discovered log class.

    ``tokens`` is the current template token list (``<*>`` marks
    variable positions); it can only *generalize* over time — once a
    position becomes a wildcard it stays one.  ``count`` tracks how many
    messages matched.

    ``store`` is a backref to the owning :class:`TemplateStore` (set by
    :meth:`TemplateStore.create`); refinements report there so caches
    keyed on the store's ``generation`` invalidate correctly.  The
    rendered template string is memoized and recomputed only after a
    refinement.
    """

    __slots__ = ("template_id", "tokens", "count", "store", "_joined")

    def __init__(self, template_id: int, tokens: Sequence[str], count: int = 1):
        self.template_id = template_id
        self.tokens = list(tokens)
        self.count = count
        self.store: "TemplateStore | None" = None
        self._joined: str | None = None

    @property
    def template(self) -> str:
        joined = self._joined
        if joined is None:
            joined = self._joined = " ".join(self.tokens)
        return joined

    def merge(self, tokens: Sequence[str]) -> bool:
        """Generalize this template against a new token sequence.

        Positions that disagree become wildcards.  Lengths must match —
        miners only merge same-length sequences (per the standard Drain
        assumption that a template has a fixed token count).

        Returns ``True`` when the merge *refined* the template (some
        position became a wildcard); a refinement advances the owning
        store's generation so exact-match caches drop stale entries.
        """
        if len(tokens) != len(self.tokens):
            raise ValueError(
                f"cannot merge length {len(tokens)} into template of "
                f"length {len(self.tokens)}"
            )
        refined = False
        for index, (mine, theirs) in enumerate(zip(self.tokens, tokens)):
            if mine != theirs and mine != WILDCARD:
                self.tokens[index] = WILDCARD
                refined = True
        self.count += 1
        if refined:
            self._joined = None
            if self.store is not None:
                self.store.note_refinement(self.template_id)
        return refined

    def extract_variables(self, tokens: Sequence[str]) -> tuple[str, ...]:
        """Pull the variable values of ``tokens`` under this template."""
        return tuple(
            value
            for position, value in zip(self.tokens, tokens)
            if position == WILDCARD
        )

    def similarity(self, tokens: Sequence[str]) -> float:
        """Fraction of positions where the static token matches.

        Drain's ``seqDist``: wildcards do not count as matches, so a
        fully-wildcarded template has similarity 0 and never greedily
        absorbs everything.
        """
        if len(tokens) != len(self.tokens):
            return 0.0
        if not tokens:
            return 1.0
        matches = sum(
            1
            for mine, theirs in zip(self.tokens, tokens)
            if mine == theirs and mine != WILDCARD
        )
        return matches / len(tokens)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MinedTemplate(id={self.template_id}, {self.template!r}, n={self.count})"


class TemplateStore:
    """Assigns template ids and records every mined template.

    The store is append-only: ids are never reused, and templates that
    later generalize keep their id — downstream detectors depend on id
    stability (the paper's DeepLog discussion: the event-index vector
    length is the number of known templates).

    ``generation`` advances whenever the template space changes in a
    way that could alter classification: a template is created, or an
    existing one refines (gains a wildcard).  :class:`TemplateCache`
    entries are valid only for the generation they were written at.

    ``dirty`` collects the ids of templates refined since the last
    :meth:`clear_dirty` — the change-set the distributed parser's delta
    sync ships between replicas instead of re-pickling every template.
    """

    def __init__(self) -> None:
        self._templates: list[MinedTemplate] = []
        self.generation = 0
        self.dirty: set[int] = set()

    def create(self, tokens: Sequence[str]) -> MinedTemplate:
        template = MinedTemplate(template_id=len(self._templates), tokens=tokens)
        template.store = self
        self._templates.append(template)
        self.generation += 1
        return template

    def note_refinement(self, template_id: int | None = None) -> None:
        """Record that some template's token list changed."""
        self.generation += 1
        if template_id is not None:
            self.dirty.add(template_id)

    def clear_dirty(self) -> None:
        """Reset the refinement change-set (delta-sync bookkeeping)."""
        self.dirty.clear()

    def __len__(self) -> int:
        return len(self._templates)

    def __iter__(self) -> Iterator[MinedTemplate]:
        return iter(self._templates)

    def __getitem__(self, template_id: int) -> MinedTemplate:
        return self._templates[template_id]

    def templates(self) -> list[str]:
        """The current template strings, in id order."""
        return [template.template for template in self._templates]


class TemplateCache:
    """Two-tier exact-match memo exploiting log repetitiveness.

    Real log streams are dominated by repeats of a small statement
    vocabulary, and a large share of lines repeat *verbatim*
    (heartbeats, per-entity lifecycles re-mentioning the same id).
    The cache has one tier per kind of repeat:

    * the **line tier** maps a raw message to its completed parse
      (template, rendered string, variables, payload) — a verbatim
      repeat skips masking, tokenization, classification, and variable
      extraction, which profiling shows is nearly the whole per-record
      cost;
    * the **template tier** maps *masked* content to the mined
      template — a repeat with fresh variable values still skips the
      miner's classification (for Drain: the tree walk and the
      per-cluster similarity scan).

    Correctness contract (both tiers): an entry is served only while
    the owning store's ``generation`` equals the generation recorded at
    fill time.  Under an unchanged generation no template was created
    or refined since the entry was written, so the miner's scan would
    see the exact same candidates with the exact same similarities and
    return the cached template again (for Drain, re-merging an
    identical token sequence is a token no-op by construction: after
    the first merge every template position is either a wildcard or
    that sequence's token), and every derived field — rendered
    template, variables, payload — is a pure function of the message
    and that template.  Any create/refine bumps the generation and
    lazily invalidates every older entry.

    Each tier is LRU-evicted beyond ``capacity``.  The counters are
    per tier — ``hits`` / ``misses`` for the template tier,
    ``line_hits`` / ``line_misses`` for the line tier (a truly cold
    record misses both tiers, so the two miss counters overlap) —
    plus ``invalidations`` for stale drops across both.  They are
    throughput-tuning signals: a high invalidation rate means the
    template space is still churning and the miner has not warmed up.
    """

    __slots__ = ("capacity", "hits", "line_hits", "misses",
                 "line_misses", "invalidations", "_entries", "_lines")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.line_hits = 0
        self.misses = 0
        self.line_misses = 0
        self.invalidations = 0
        # masked → (generation, template, masked tokens, wildcard
        # positions or None when positional extraction is unsafe).
        self._entries: OrderedDict[
            str, tuple[int, MinedTemplate, list[str], tuple[int, ...] | None]
        ] = OrderedDict()
        # raw message → (generation, template, rendered template,
        # variables, payload).
        self._lines: OrderedDict[
            str, tuple[int, MinedTemplate, str, tuple[str, ...],
                       dict[str, object]]
        ] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def line_count(self) -> int:
        return len(self._lines)

    @property
    def total_hits(self) -> int:
        """Hits across both tiers."""
        return self.hits + self.line_hits

    def get(
        self, masked: str, generation: int
    ) -> tuple[MinedTemplate, list[str], tuple[int, ...] | None] | None:
        """Template-tier lookup; None on miss or stale entry."""
        entry = self._entries.get(masked)
        if entry is None:
            self.misses += 1
            return None
        cached_generation, template, tokens, positions = entry
        if cached_generation != generation:
            # Stale: the template space changed since this was written.
            del self._entries[masked]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(masked)
        self.hits += 1
        return template, tokens, positions

    def put(
        self,
        masked: str,
        generation: int,
        template: MinedTemplate,
        tokens: list[str],
        positions: tuple[int, ...] | None,
    ) -> None:
        self._entries[masked] = (generation, template, tokens, positions)
        self._entries.move_to_end(masked)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def get_line(
        self, message: str, generation: int
    ) -> tuple[MinedTemplate, str, tuple[str, ...], dict[str, object]] | None:
        """Line-tier lookup; None on miss or stale entry."""
        entry = self._lines.get(message)
        if entry is None:
            self.line_misses += 1
            return None
        if entry[0] != generation:
            del self._lines[message]
            self.invalidations += 1
            self.line_misses += 1
            return None
        self._lines.move_to_end(message)
        self.line_hits += 1
        return entry[1], entry[2], entry[3], entry[4]

    def put_line(
        self,
        message: str,
        generation: int,
        template: MinedTemplate,
        rendered: str,
        variables: tuple[str, ...],
        payload: dict[str, object],
    ) -> None:
        self._lines[message] = (generation, template, rendered,
                                variables, payload)
        self._lines.move_to_end(message)
        if len(self._lines) > self.capacity:
            self._lines.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self._lines.clear()


class Parser:
    """Common parser API.

    ``parse_record`` is the single-record entry point; ``parse_batch``
    is the amortized fast path over a list of records (identical
    output, in order).  The optional preprocessing chain is applied in
    paper order: first the structured-payload extraction step (§IV
    recommendation), then the regex masker.  Both are off by default so
    that experiments measure the raw algorithms unless they opt in.

    ``cache_size`` enables the exact-match :class:`TemplateCache` on
    masked content.  It defaults to off here because only miners whose
    classification is a pure function of (tokens, template space) may
    serve hits — :class:`~repro.parsing.drain.DrainParser` turns it on.
    """

    def __init__(
        self,
        masker: Masker | None = None,
        extract_structured: bool = False,
        cache_size: int = 0,
    ) -> None:
        self.masker = masker if masker is not None else no_masker()
        self.extract_structured = extract_structured
        self.store = TemplateStore()
        self.cache = TemplateCache(cache_size) if cache_size > 0 else None

    # -- to be provided by concrete miners ---------------------------------

    def _classify(self, tokens: list[str]) -> MinedTemplate:
        """Map a token sequence to its (possibly new) template."""
        raise NotImplementedError

    def _on_cache_hit(self, template: MinedTemplate) -> None:
        """Bookkeeping a cache hit must replay in place of `_classify`.

        Online miners absorb every match into the winning cluster, so
        the only state a skipped classification would have touched is
        the match count.  Batch miners override this with a no-op
        (their assignment pass never mutates counts).
        """
        template.count += 1

    # -- public API ---------------------------------------------------------

    def parse_record(self, record: LogRecord) -> ParsedLog:
        """Parse one record into a structured event."""
        cache = self.cache
        if cache is not None:
            line = cache.get_line(record.message, self.store.generation)
            if line is not None:
                # Verbatim repeat: the whole parse is a pure function
                # of the message and the (unchanged) template space.
                template, rendered, variables, payload = line
                self._on_cache_hit(template)
                return ParsedLog(
                    record=record,
                    template_id=template.template_id,
                    template=rendered,
                    variables=variables,
                    payload=dict(payload) if payload else {},
                )
        message = record.message
        payload: dict[str, object] = {}
        if self.extract_structured:
            extraction = extract_structured_payload(message)
            message = extraction.text
            payload = dict(extraction.payload)
        masked = self.masker.mask(message)
        hit = cache.get(masked, self.store.generation) if cache is not None else None
        if hit is not None:
            template, tokens, positions = hit
            self._on_cache_hit(template)
        else:
            tokens = tokenize(masked)
            template = self._classify(tokens)
            # Positional variable extraction is valid only while the
            # template's token list is unchanged — guaranteed by the
            # cache's generation check — and only when lengths line up.
            if len(template.tokens) == len(tokens):
                positions = tuple(
                    index
                    for index, token in enumerate(template.tokens)
                    if token == WILDCARD
                )
            else:
                positions = None
            if cache is not None:
                cache.put(masked, self.store.generation, template,
                          tokens, positions)
        # Classification runs on masked tokens, but variable *values*
        # must come from the original message (masking would otherwise
        # erase them and quantitative detection with it).  Positions
        # align whenever masking preserved the token count, which the
        # default rules do (they never match across whitespace).
        original_tokens = tokenize(message)
        value_tokens = (
            original_tokens if len(original_tokens) == len(tokens) else tokens
        )
        if positions is not None:
            variables = tuple(value_tokens[index] for index in positions)
        else:
            variables = template.extract_variables(value_tokens)
        rendered = template.template
        if cache is not None:
            # Store a payload copy: cached state must be immune to
            # consumers mutating this event's payload in place.
            cache.put_line(record.message, self.store.generation, template,
                           rendered, variables, dict(payload))
        return ParsedLog(
            record=record,
            template_id=template.template_id,
            template=rendered,
            variables=variables,
            payload=payload,
        )

    def parse_stream(self, records: Iterable[LogRecord]) -> Iterator[ParsedLog]:
        """Parse a stream lazily, in delivery order."""
        for record in records:
            yield self.parse_record(record)

    def parse_all(self, records: Iterable[LogRecord]) -> list[ParsedLog]:
        """Parse and materialize a full corpus."""
        return list(self.parse_stream(records))

    def parse_batch(self, records: Sequence[LogRecord]) -> list[ParsedLog]:
        """Batched fast path: parse ``records`` in order, amortized.

        Output is exactly what a ``parse_record`` loop would produce —
        same templates, ids, variables, and order.  Batching a finite
        slice lets both cache tiers (verbatim-line and masked-content)
        do their work over the whole slice in one call; repeats skip
        masking, tokenization, classification, and variable extraction.
        The line-tier probe is inlined here with pre-bound locals —
        per-record dispatch overhead is most of what is left once the
        cache absorbs the parsing work itself.
        """
        cache = self.cache
        parse = self.parse_record
        if cache is None:
            return [parse(record) for record in records]
        results: list[ParsedLog] = []
        append = results.append
        store = self.store
        lines = cache._lines
        move_to_end = lines.move_to_end
        on_hit = self._on_cache_hit
        for record in records:
            message = record.message
            entry = lines.get(message)
            if entry is not None and entry[0] == store.generation:
                # Inline line-tier hit, identical to parse_record's.
                move_to_end(message)
                cache.line_hits += 1
                template = entry[1]
                on_hit(template)
                payload = entry[4]
                append(ParsedLog(
                    record=record,
                    template_id=template.template_id,
                    template=entry[2],
                    variables=entry[3],
                    payload=dict(payload) if payload else {},
                ))
            else:
                # Miss or stale entry: parse_record re-probes and
                # handles invalidation bookkeeping itself.
                append(parse(record))
        return results

    @property
    def template_count(self) -> int:
        return len(self.store)


def parse_in_batches(parser, records, batch_size: int | None = None):
    """Drain ``records`` through ``parser.parse_batch`` in micro-batches.

    The single chunking routine behind ``MoniLog.process_batch``,
    ``ShardedMoniLog``, and the CLI's ``--batch-size`` — every caller
    shares the same slicing and validation.  ``parser`` is anything
    with a ``parse_batch`` (a :class:`Parser` or a
    :class:`~repro.parsing.distributed.DistributedDrain`);
    ``batch_size=None`` parses the whole list in one batch.  Output is
    identical for every batch size (see :meth:`Parser.parse_batch`).
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    records = list(records)
    size = batch_size or len(records) or 1
    parsed: list[ParsedLog] = []
    for start in range(0, len(records), size):
        parsed.extend(parser.parse_batch(records[start:start + size]))
    return parsed


class OnlineParser(Parser):
    """Marker base for streaming miners (discover templates on the job)."""


class BatchParser(Parser):
    """Base for batch miners: require a :meth:`fit` pass before parsing.

    ``fit`` mines templates from a corpus; ``parse_record`` then
    assigns messages to the mined templates (unseen shapes fall back to
    a one-off template, counted as a parse miss by the metrics).
    """

    def __init__(self, masker: Masker | None = None,
                 extract_structured: bool = False) -> None:
        super().__init__(masker, extract_structured)
        self._fitted = False

    def _on_cache_hit(self, template: MinedTemplate) -> None:
        """Assignment to mined templates never mutates counts."""

    def _mine(self, token_lists: list[list[str]]) -> None:
        """Populate ``self.store`` from the training token lists."""
        raise NotImplementedError

    def fit(self, records: Iterable[LogRecord]) -> "BatchParser":
        """Mine templates from a corpus (one batch pass)."""
        token_lists = []
        for record in records:
            message = record.message
            if self.extract_structured:
                message = extract_structured_payload(message).text
            token_lists.append(tokenize(self.masker.mask(message)))
        self._mine(token_lists)
        self._fitted = True
        return self

    def _classify(self, tokens: list[str]) -> MinedTemplate:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before parsing; "
                "call fit(records) first"
            )
        best: MinedTemplate | None = None
        best_score = -1.0
        for template in self.store:
            score = template.similarity(tokens)
            if score > best_score and len(template.tokens) == len(tokens):
                best, best_score = template, score
        if best is not None and best_score > 0.0:
            return best
        # Unseen shape: emit a one-off, fully-static template.
        return self.store.create(tokens)
