"""Core log data model.

The paper (section IV) splits a log line into a HEADER — structured
fields such as timestamp, criticality level and source — and a MESSAGE,
a free-text field composed of a static *template* part and a variable
part.  :class:`LogRecord` models the raw line; :class:`ParsedLog` models
the output of the parsing stage (Fig. 2): the same header plus the
discovered ``(template, variables)`` decomposition of the message.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field, replace

#: Token used in templates where a variable was identified.  This is the
#: conventional wildcard used by Drain and the LogHub benchmarks.
WILDCARD = "<*>"

#: Tenant assigned to records that arrive without an explicit tenant.
#: Single-stream deployments never mention tenancy and everything lands
#: here; the multi-tenant gateway (repro.gateway) stamps real tenant
#: ids at the transport edge.
DEFAULT_TENANT = "default"

_WHITESPACE = re.compile(r"\s+")


class Severity(enum.IntEnum):
    """Syslog-style criticality levels for the log HEADER.

    Ordered so that comparisons express severity: ``Severity.ERROR >
    Severity.INFO`` holds.
    """

    TRACE = 0
    DEBUG = 1
    INFO = 2
    WARNING = 3
    ERROR = 4
    CRITICAL = 5

    @classmethod
    def from_text(cls, text: str) -> "Severity":
        """Parse a severity name leniently (case, common aliases).

        >>> Severity.from_text("warn")
        <Severity.WARNING: 3>
        """
        normalized = text.strip().upper()
        aliases = {
            "WARN": "WARNING",
            "ERR": "ERROR",
            "FATAL": "CRITICAL",
            "CRIT": "CRITICAL",
            "FINE": "DEBUG",
            "SEVERE": "ERROR",
            "NOTICE": "INFO",
        }
        normalized = aliases.get(normalized, normalized)
        try:
            return cls[normalized]
        except KeyError:
            raise ValueError(f"unknown severity: {text!r}") from None


def tokenize(message: str) -> list[str]:
    """Split a message into tokens.

    The paper defines a token as "a sequence delimited by spaces inside a
    log message"; the Eq. 1 metric and all parsers share this definition.

    >>> tokenize("Sending 138 bytes")
    ['Sending', '138', 'bytes']
    """
    stripped = message.strip()
    if not stripped:
        return []
    return _WHITESPACE.split(stripped)


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One raw log line: HEADER fields plus the free-text MESSAGE.

    ``source`` identifies the emitting system (one of the many log
    sources feeding MoniLog), ``timestamp`` is seconds since an
    arbitrary epoch, and ``session_id`` optionally carries the execution
    context (e.g. an HDFS block id) used for session windowing.
    ``sequence`` is the emission order within the source; stream noise
    may deliver records out of ``sequence`` order.  ``tenant`` names the
    customer the record belongs to in a multi-tenant deployment; legacy
    single-stream paths leave it at :data:`DEFAULT_TENANT`.
    """

    timestamp: float
    source: str
    severity: Severity
    message: str
    session_id: str | None = None
    sequence: int = 0
    labels: frozenset[str] = frozenset()
    tenant: str = DEFAULT_TENANT

    @property
    def tokens(self) -> list[str]:
        """Tokens of the MESSAGE field (space-delimited, paper §IV)."""
        return tokenize(self.message)

    @property
    def is_anomalous(self) -> bool:
        """Ground-truth flag: ``True`` if tagged with the ``anomaly`` label.

        Ground truth is carried on records by the synthetic dataset
        generators; production streams simply leave ``labels`` empty.
        """
        return "anomaly" in self.labels

    def with_message(self, message: str) -> "LogRecord":
        """Return a copy with a replaced MESSAGE (used by noise injectors)."""
        return replace(self, message=message)

    def with_labels(self, *extra: str) -> "LogRecord":
        """Return a copy with additional ground-truth labels."""
        return replace(self, labels=self.labels | frozenset(extra))

    def render(self) -> str:
        """Render to the classic one-line textual form (Fig. 2 layout)."""
        return (
            f"{self.timestamp:.3f} - {self.source} - "
            f"{self.severity.name} - {self.message}"
        )


@dataclass(frozen=True, slots=True)
class ParsedLog:
    """A structured log event: output of the parsing stage (Fig. 2).

    ``template`` is the static part of the MESSAGE with variables
    replaced by :data:`WILDCARD`; ``variables`` holds the extracted
    values in token order.  ``template_id`` is the parser-assigned
    identifier of the log class, stable within one parser instance.
    ``payload`` carries key/values recovered by the structured-data
    extraction preliminary step (paper §IV), if it ran.
    """

    record: LogRecord
    template_id: int
    template: str
    variables: tuple[str, ...] = ()
    payload: dict[str, object] = field(default_factory=dict)

    @property
    def timestamp(self) -> float:
        return self.record.timestamp

    @property
    def source(self) -> str:
        return self.record.source

    @property
    def session_id(self) -> str | None:
        return self.record.session_id

    @property
    def tenant(self) -> str:
        return self.record.tenant

    @property
    def windowing_key(self) -> str:
        """The session key windowing groups this event under.

        The session id when the substrate provides one, else a
        per-source pseudo-session key.  The streaming sessionizer
        buckets by this key and the sharded runtime routes windows to
        detector shards by hashing it, so the two MUST agree — that is
        why the scheme lives here, on the event, and not in either
        consumer.
        """
        return self.record.session_id or f"source:{self.record.source}"

    def reconstruct(self) -> str:
        """Re-substitute variables into the template.

        Useful to verify a lossless parse: for a correct parse the
        reconstruction token count matches the original message.
        """
        parts: list[str] = []
        variables = iter(self.variables)
        for token in tokenize(self.template):
            if token == WILDCARD:
                parts.append(next(variables, WILDCARD))
            else:
                parts.append(token)
        return " ".join(parts)


def template_of(message: str, variable_positions: set[int]) -> tuple[str, tuple[str, ...]]:
    """Build a ``(template, variables)`` pair from a message.

    ``variable_positions`` are token indices to replace with
    :data:`WILDCARD`.  This helper is shared by dataset generators
    (which know ground truth) and parser tests.

    >>> template_of("Sending 138 bytes", {1})
    ('Sending <*> bytes', ('138',))
    """
    tokens = tokenize(message)
    out: list[str] = []
    variables: list[str] = []
    for index, token in enumerate(tokens):
        if index in variable_positions:
            out.append(WILDCARD)
            variables.append(token)
        else:
            out.append(token)
    return " ".join(out), tuple(variables)
