"""Session-key derivation from message content.

Detectors window the stream by execution context (an HDFS block, an
API request), but raw log lines do not carry a session column — the
context lives *inside the message* as an identifier token (``blk_``,
``req-``, ``vm-``...).  The public HDFS benchmark itself is sessionized
this way, by grepping block ids.

:class:`SessionKeyExtractor` finds the first id-shaped token in each
message against a configurable pattern list and rewrites records with
the derived ``session_id``.  Records without any identifier stay
sessionless (downstream falls back to source buckets / sliding
windows).  The CLI uses this to sessionize plain log files.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import replace

from repro.logs.record import LogRecord

#: Identifier shapes seen across the synthetic corpora and the public
#: benchmarks: HDFS block ids, request/instance/volume ids, generic
#: ``key=value`` trace ids.
DEFAULT_SESSION_PATTERNS: tuple[str, ...] = (
    r"\bblk_-?\d+\b",
    r"\breq-[0-9a-f\d]+\b",
    r"\bvm-[0-9a-f]+\b",
    r"\bvol-[0-9a-f]+\b",
    r"\b(?:trace|request|session)[_-]?id[=:]\s*(\S+)",
)


class SessionKeyExtractor:
    """Derive session ids from message content.

    Args:
        patterns: regexes tried in order; the first match wins.  A
            pattern with a capture group contributes the group,
            otherwise the whole match.
    """

    def __init__(
        self, patterns: Sequence[str] = DEFAULT_SESSION_PATTERNS
    ) -> None:
        if not patterns:
            raise ValueError("at least one session pattern is required")
        self._patterns = [re.compile(pattern) for pattern in patterns]

    def key_for(self, message: str) -> str | None:
        """The session key of one message, or ``None``."""
        for pattern in self._patterns:
            match = pattern.search(message)
            if match is not None:
                return match.group(1) if match.groups() else match.group(0)
        return None

    def assign(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        """Yield records with derived session ids.

        Records that already carry a session id keep it; records whose
        message holds no identifier stay sessionless.
        """
        for record in records:
            if record.session_id is not None:
                yield record
                continue
            key = self.key_for(record.message)
            if key is None:
                yield record
            else:
                yield replace(record, session_id=key)

    def coverage(self, records: Sequence[LogRecord]) -> float:
        """Fraction of records that receive (or have) a session id."""
        if not records:
            return 0.0
        covered = sum(
            1
            for record in records
            if record.session_id is not None
            or self.key_for(record.message) is not None
        )
        return covered / len(records)
