"""Multi-source log stream with production noise.

The paper's §I lists two characteristics of the OUTSCALE platform that
MoniLog must survive: (1) log statements evolve quickly (handled by
:mod:`repro.logs.instability`) and (2) "the spatial distance between log
sources and the different storage systems is variable.  This
configuration induces noise, as logs can arrive in mixed order or
sometimes be duplicated."

:func:`interleave` merges per-source record iterators by timestamp —
the MoniLog input model of Fig. 1.  :class:`ReorderingNoise` and
:class:`DuplicationNoise` perturb a merged stream the way unreliable
transport does.  :class:`LogStream` bundles sources plus a noise chain
into a reusable, restartable stream object.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Iterable, Iterator
from dataclasses import replace

from repro.logs.record import LogRecord
from repro.logs.sources import LogSource


def interleave(sources: Iterable[LogSource]) -> Iterator[LogRecord]:
    """Merge several sources into one stream ordered by timestamp.

    This is a streaming k-way merge: it holds one pending record per
    source, so memory stays O(#sources) however long the streams are.
    """
    heap: list[tuple[float, int, LogRecord, Iterator[LogRecord]]] = []
    for index, source in enumerate(sources):
        iterator = iter(source)
        first = next(iterator, None)
        if first is not None:
            heapq.heappush(heap, (first.timestamp, index, first, iterator))
    while heap:
        _, index, record, iterator = heapq.heappop(heap)
        yield record
        following = next(iterator, None)
        if following is not None:
            heapq.heappush(heap, (following.timestamp, index, following, iterator))


class StreamNoise:
    """Base class for stream perturbations.

    A noise transforms a record iterator into another record iterator.
    Implementations must be deterministic given their seed so that
    experiments are reproducible.
    """

    def apply(self, records: Iterator[LogRecord]) -> Iterator[LogRecord]:
        raise NotImplementedError


class DuplicationNoise(StreamNoise):
    """Randomly re-deliver records, as unreliable transport does.

    Each record is duplicated with probability ``rate``; the duplicate
    is delivered ``delay`` seconds later (it keeps its original
    ``sequence`` number, which is how a downstream consumer could detect
    it — MoniLog does not assume it can).
    """

    def __init__(self, rate: float = 0.01, delay: float = 0.5, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"duplication rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.delay = delay
        self.seed = seed

    def apply(self, records: Iterator[LogRecord]) -> Iterator[LogRecord]:
        rng = random.Random(self.seed)
        pending: list[tuple[float, int, LogRecord]] = []
        counter = 0
        for record in records:
            while pending and pending[0][0] <= record.timestamp:
                yield heapq.heappop(pending)[2]
            yield record
            if rng.random() < self.rate:
                duplicate = replace(record, timestamp=record.timestamp + self.delay)
                heapq.heappush(pending, (duplicate.timestamp, counter, duplicate))
                counter += 1
        while pending:
            yield heapq.heappop(pending)[2]


class ReorderingNoise(StreamNoise):
    """Deliver records in mixed order, simulating variable network delay.

    Each record receives an independent random delay uniform in
    ``[0, max_delay]`` seconds; records are then re-emitted in delayed
    order.  Records closer together than the typical delay may swap.
    """

    def __init__(self, max_delay: float = 1.0, seed: int = 0):
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.max_delay = max_delay
        self.seed = seed

    def apply(self, records: Iterator[LogRecord]) -> Iterator[LogRecord]:
        rng = random.Random(self.seed)
        pending: list[tuple[float, int, LogRecord]] = []
        counter = 0
        for record in records:
            delivery = record.timestamp + rng.uniform(0.0, self.max_delay)
            heapq.heappush(pending, (delivery, counter, record))
            counter += 1
            # Anything scheduled before the earliest possible delivery of
            # future records (record.timestamp) can be flushed safely.
            while pending and pending[0][0] <= record.timestamp:
                yield heapq.heappop(pending)[2]
        while pending:
            yield heapq.heappop(pending)[2]


class LogStream:
    """A restartable multi-source stream with an optional noise chain.

    Iterating a :class:`LogStream` re-runs the sources from scratch, so
    the same stream object can feed several experiments.

    >>> stream = LogStream([source_a, source_b],
    ...                    noises=[ReorderingNoise(max_delay=0.2)])
    >>> for record in stream:  # doctest: +SKIP
    ...     handle(record)
    """

    def __init__(
        self,
        sources: Iterable[LogSource],
        noises: Iterable[StreamNoise] = (),
    ) -> None:
        self.sources = list(sources)
        self.noises = list(noises)

    def __iter__(self) -> Iterator[LogRecord]:
        records: Iterator[LogRecord] = interleave(self.sources)
        for noise in self.noises:
            records = noise.apply(records)
        return records

    def collect(self, limit: int | None = None) -> list[LogRecord]:
        """Materialize up to ``limit`` records (all records if ``None``)."""
        output: list[LogRecord] = []
        for record in self:
            output.append(record)
            if limit is not None and len(output) >= limit:
                break
        return output
