"""Raw log line ↔ :class:`LogRecord`: the HEADER parsing step.

Fig. 2's first move splits a raw line into HEADER fields (timestamp,
source, level) and the free-text MESSAGE.  The HEADER "fields are
already structured according to a predefined format" (§IV) — this
module models those predefined formats:

* :class:`LineFormat` — a named regex with ``timestamp`` / ``source``
  / ``level`` / ``message`` groups plus a timestamp decoder;
* built-in formats for the dashed layout the paper's figure uses,
  syslog-style lines, and epoch-prefixed lines;
* :func:`detect_format` — pick the format that parses a sample best
  (deployment without human configuration, the paper's automation
  goal applied to the header);
* :func:`read_log_lines` / :func:`render_line` — bulk conversion.
"""

from __future__ import annotations

import datetime as _datetime
import re
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.logs.record import LogRecord, Severity


def _parse_iso(text: str) -> float:
    """Seconds since epoch for ``2020-03-19 15:38:55,977``-style stamps."""
    normalized = text.replace(",", ".")
    stamp = _datetime.datetime.fromisoformat(normalized)
    if stamp.tzinfo is None:
        stamp = stamp.replace(tzinfo=_datetime.timezone.utc)
    return stamp.timestamp()


def _parse_epoch(text: str) -> float:
    return float(text)


_SYSLOG_MONTHS = {
    name: index
    for index, name in enumerate(
        ("Jan", "Feb", "Mar", "Apr", "May", "Jun",
         "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"),
        start=1,
    )
}


def _parse_syslog(text: str) -> float:
    """``Mar 19 15:38:55`` — year-less; anchored to 2020 for determinism."""
    month_name, day, clock = text.split()
    hour, minute, second = clock.split(":")
    stamp = _datetime.datetime(
        2020, _SYSLOG_MONTHS[month_name], int(day),
        int(hour), int(minute), int(second),
        tzinfo=_datetime.timezone.utc,
    )
    return stamp.timestamp()


@dataclass(frozen=True)
class LineFormat:
    """One predefined header layout.

    ``pattern`` must expose named groups ``timestamp`` and ``message``;
    ``source`` and ``level`` groups are optional (defaulted when the
    layout lacks them).  ``timestamp_parser`` decodes the matched
    timestamp text to seconds.
    """

    name: str
    pattern: re.Pattern[str]
    timestamp_parser: Callable[[str], float]
    default_source: str = "unknown"
    default_level: Severity = Severity.INFO

    def parse(self, line: str) -> LogRecord | None:
        """Parse one line; ``None`` when the layout does not match."""
        match = self.pattern.match(line.rstrip("\n"))
        if match is None:
            return None
        groups = match.groupdict()
        try:
            timestamp = self.timestamp_parser(groups["timestamp"])
        except (ValueError, KeyError):
            return None
        level_text = groups.get("level")
        if level_text:
            try:
                severity = Severity.from_text(level_text)
            except ValueError:
                severity = self.default_level
        else:
            severity = self.default_level
        return LogRecord(
            timestamp=timestamp,
            source=groups.get("source") or self.default_source,
            severity=severity,
            message=groups.get("message", "").strip(),
        )

    def render(self, record: LogRecord) -> str:
        """Best-effort inverse of :meth:`parse` (dashed layout only)."""
        stamp = _datetime.datetime.fromtimestamp(
            record.timestamp, tz=_datetime.timezone.utc
        )
        text = stamp.strftime("%Y-%m-%d %H:%M:%S,") + f"{stamp.microsecond // 1000:03d}"
        return (
            f"{text} - {record.source} - {record.severity.name} - "
            f"{record.message}"
        )


#: The layout of the paper's Fig. 2 example:
#: ``2020-03-19 15:38:55,977 - serviceManager - INFO - message``.
DASHED_FORMAT = LineFormat(
    name="dashed",
    pattern=re.compile(
        r"(?P<timestamp>\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}[.,]\d+)"
        r"\s*-\s*(?P<source>[^-\s][^-]*?)\s*-\s*(?P<level>\w+)\s*-\s*"
        r"(?P<message>.*)"
    ),
    timestamp_parser=_parse_iso,
)

#: ``Mar 19 15:38:55 hostname service[pid]: message`` (classic syslog).
SYSLOG_FORMAT = LineFormat(
    name="syslog",
    pattern=re.compile(
        r"(?P<timestamp>[A-Z][a-z]{2} [ \d]?\d \d{2}:\d{2}:\d{2}) "
        r"(?P<host>\S+) (?P<source>[\w./-]+)(?:\[\d+\])?: "
        r"(?P<message>.*)"
    ),
    timestamp_parser=_parse_syslog,
)

#: ``1584625135.977 service LEVEL message`` (epoch-prefixed).
EPOCH_FORMAT = LineFormat(
    name="epoch",
    pattern=re.compile(
        r"(?P<timestamp>\d+(?:\.\d+)?) (?P<source>\S+) (?P<level>[A-Z]+) "
        r"(?P<message>.*)"
    ),
    timestamp_parser=_parse_epoch,
)

BUILTIN_FORMATS: tuple[LineFormat, ...] = (
    DASHED_FORMAT, SYSLOG_FORMAT, EPOCH_FORMAT,
)


def detect_format(
    sample: Sequence[str],
    formats: Sequence[LineFormat] = BUILTIN_FORMATS,
    minimum_hit_rate: float = 0.5,
) -> LineFormat | None:
    """Pick the format that parses the biggest share of ``sample``.

    Returns ``None`` when no candidate reaches ``minimum_hit_rate`` —
    the caller should fall back to treating whole lines as messages
    rather than silently mis-parsing headers.
    """
    if not sample:
        return None
    best: LineFormat | None = None
    best_rate = 0.0
    for candidate in formats:
        hits = sum(1 for line in sample if candidate.parse(line) is not None)
        rate = hits / len(sample)
        if rate > best_rate:
            best, best_rate = candidate, rate
    if best_rate < minimum_hit_rate:
        return None
    return best


def read_log_lines(
    lines: Iterable[str],
    line_format: LineFormat | None = None,
    *,
    source: str = "file",
) -> Iterator[LogRecord]:
    """Convert text lines to records.

    With ``line_format=None`` the format is auto-detected on the first
    100 lines (buffered, then replayed).  Unparseable lines become
    records whose whole line is the message — never dropped, matching
    the robustness stance of the paper.
    """
    iterator = iter(lines)
    buffered: list[str] = []
    if line_format is None:
        for line in iterator:
            buffered.append(line)
            if len(buffered) >= 100:
                break
        line_format = detect_format(buffered)

    sequence = 0
    fallback_clock = 0.0

    def convert(line: str) -> LogRecord:
        nonlocal sequence, fallback_clock
        record = line_format.parse(line) if line_format is not None else None
        if record is None:
            fallback_clock += 1e-3
            record = LogRecord(
                timestamp=fallback_clock,
                source=source,
                severity=Severity.INFO,
                message=line.rstrip("\n"),
            )
        record = LogRecord(
            timestamp=record.timestamp,
            source=record.source,
            severity=record.severity,
            message=record.message,
            session_id=record.session_id,
            sequence=sequence,
            labels=record.labels,
        )
        sequence += 1
        return record

    for line in buffered:
        if line.strip():
            yield convert(line)
    for line in iterator:
        if line.strip():
            yield convert(line)


def render_line(record: LogRecord) -> str:
    """Render a record in the dashed layout of Fig. 2."""
    return DASHED_FORMAT.render(record)
