"""Log data model, sources, streams, and stream perturbations.

This subpackage implements the input side of MoniLog (paper section II):
the raw :class:`~repro.logs.record.LogRecord` model, individual
:class:`~repro.logs.sources.LogSource` emitters, the multi-source
:class:`~repro.logs.stream.LogStream` multiplexer with the production
noise the paper describes (duplication, reordering), the preliminary
JSON/XML structured-data extraction step recommended in section IV, and
the LogRobust-style instability injection used by experiment X2.
"""

from repro.logs.formats import (
    BUILTIN_FORMATS,
    LineFormat,
    detect_format,
    read_log_lines,
    render_line,
)
from repro.logs.instability import InstabilityInjector, InstabilityKind
from repro.logs.record import DEFAULT_TENANT, LogRecord, ParsedLog, Severity
from repro.logs.sessions import DEFAULT_SESSION_PATTERNS, SessionKeyExtractor
from repro.logs.sources import (
    LogSource,
    ReplaySource,
    ScriptedSource,
    TemplateLibrary,
)
from repro.logs.stream import (
    DuplicationNoise,
    LogStream,
    ReorderingNoise,
    StreamNoise,
    interleave,
)
from repro.logs.structured import StructuredExtraction, extract_structured_payload

__all__ = [
    "BUILTIN_FORMATS",
    "DEFAULT_SESSION_PATTERNS",
    "DEFAULT_TENANT",
    "DuplicationNoise",
    "InstabilityInjector",
    "InstabilityKind",
    "LogRecord",
    "LogSource",
    "LogStream",
    "ParsedLog",
    "ReorderingNoise",
    "ReplaySource",
    "ScriptedSource",
    "LineFormat",
    "SessionKeyExtractor",
    "Severity",
    "StreamNoise",
    "StructuredExtraction",
    "TemplateLibrary",
    "detect_format",
    "extract_structured_payload",
    "interleave",
    "read_log_lines",
    "render_line",
]
