"""Preliminary extraction of JSON/XML payloads from log messages.

While studying internal services the paper found "almost 60% of the
tokens composing log messages are coming from JSON or XML-formatted
data" appended to the free text (§IV), e.g.::

    Send 42 bytes to 121.13.4.26 {user_id=125, service_name=dart_vader}

It therefore recommends "a preliminary step to extract potential data
coming from a structured format", which shortens messages and raises
the discovery rate of log parsing algorithms.  Experiment X7 measures
exactly that effect.

:func:`extract_structured_payload` splits a message into its free-text
prefix and a parsed payload dictionary.  It understands:

* JSON objects / arrays (strict, via :mod:`json`),
* relaxed ``{key=value, ...}`` bags (common in Java/Python reprs),
* trailing XML elements.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

_RELAXED_PAIR = re.compile(
    r"""
    \s*
    (?P<key>[A-Za-z_][\w.-]*)
    \s*[=:]\s*
    (?P<value>"[^"]*"|'[^']*'|[^,{}]+?)
    \s*(?:,|$)
    """,
    re.VERBOSE,
)

_XML_ELEMENT = re.compile(
    r"<(?P<tag>[A-Za-z_][\w.-]*)(?:\s[^>]*)?>(?P<body>[^<]*)</(?P=tag)>"
)


@dataclass(frozen=True)
class StructuredExtraction:
    """Result of the structured-data extraction step.

    ``text`` is the free-text remainder (what the parser should see);
    ``payload`` holds the recovered key/values; ``fmt`` is ``"json"``,
    ``"relaxed"``, ``"xml"`` or ``None`` when nothing was extracted.
    """

    text: str
    payload: dict[str, object] = field(default_factory=dict)
    fmt: str | None = None

    @property
    def extracted(self) -> bool:
        return self.fmt is not None


def _find_json_start(message: str) -> int | None:
    """Locate the start of a trailing JSON object/array, if any."""
    for opener in "{[":
        index = message.find(opener)
        while index != -1:
            candidate = message[index:].strip()
            try:
                json.loads(candidate)
            except (ValueError, TypeError):
                index = message.find(opener, index + 1)
            else:
                return index
    return None


def _parse_relaxed(body: str) -> dict[str, object] | None:
    """Parse a ``{key=value, key: value}`` bag; None if it doesn't fit."""
    inner = body.strip()
    if not (inner.startswith("{") and inner.endswith("}")):
        return None
    inner = inner[1:-1].strip()
    if not inner:
        return {}
    payload: dict[str, object] = {}
    position = 0
    while position < len(inner):
        match = _RELAXED_PAIR.match(inner, position)
        if match is None:
            return None
        value = match.group("value").strip().strip("\"'")
        payload[match.group("key")] = _coerce(value)
        position = match.end()
    return payload or None


def _coerce(value: str) -> object:
    """Coerce a scalar string to int/float/bool when unambiguous."""
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("null", "none"):
        return None
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def extract_structured_payload(message: str) -> StructuredExtraction:
    """Split ``message`` into free text and a structured payload.

    The free-text part is what should be fed to the template miner; the
    payload keeps the data available to downstream consumers (e.g. the
    quantitative anomaly detector can watch payload values).

    >>> result = extract_structured_payload(
    ...     'Send 42 bytes {"user_id": 125}')
    >>> result.text
    'Send 42 bytes'
    >>> result.payload
    {'user_id': 125}
    """
    # 1. Strict JSON suffix.
    json_start = _find_json_start(message)
    if json_start is not None:
        prefix = message[:json_start].rstrip()
        raw = message[json_start:].strip()
        loaded = json.loads(raw)
        payload = loaded if isinstance(loaded, dict) else {"_items": loaded}
        return StructuredExtraction(text=prefix, payload=payload, fmt="json")

    # 2. Relaxed {k=v, ...} bag.
    brace = message.find("{")
    if brace != -1 and message.rstrip().endswith("}"):
        payload = _parse_relaxed(message[brace:])
        if payload is not None:
            return StructuredExtraction(
                text=message[:brace].rstrip(), payload=payload, fmt="relaxed"
            )

    # 3. Trailing XML element(s): take the maximal run of adjacent
    # elements that extends to the end of the message.
    elements = list(_XML_ELEMENT.finditer(message))
    if elements and message[elements[-1].end():].strip() == "":
        run_start = elements[-1].start()
        for element in reversed(elements[:-1]):
            if message[element.end():run_start].strip() == "":
                run_start = element.start()
            else:
                break
        payload = {
            element.group("tag"): _coerce(element.group("body").strip())
            for element in elements
            if element.start() >= run_start
        }
        if payload:
            return StructuredExtraction(
                text=message[:run_start].rstrip(),
                payload=payload,
                fmt="xml",
            )

    return StructuredExtraction(text=message)
