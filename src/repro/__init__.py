"""MoniLog reproduction: automated log-based anomaly detection.

This package reproduces *MoniLog: An Automated Log-Based Anomaly
Detection System for Cloud Computing Infrastructures* (Vervaet,
ICDE 2021): a three-stage pipeline that structures a multi-source log
stream, detects sequential and quantitative anomalies, and classifies
them into team pools with criticalities learned passively from
administrator actions.

Quickstart::

    from repro import Pipeline, PipelineSpec
    from repro.datasets import generate_cloud_platform

    data = generate_cloud_platform(sessions=500)
    pipeline = Pipeline.from_spec(PipelineSpec())
    pipeline.fit(data.records[: len(data.records) // 2])
    for alert in pipeline.run(data.records[len(data.records) // 2:]):
        print(alert.report.summary(), "->", alert.pool, alert.criticality)

Subpackages: :mod:`repro.api` (component registry, PipelineSpec, and
the unified Pipeline facade), :mod:`repro.logs` (data model &
streams), :mod:`repro.datasets` (ground-truthed generators),
:mod:`repro.parsing` (9 template miners + distribution),
:mod:`repro.nn` (numpy LSTM stack), :mod:`repro.detection`
(detectors), :mod:`repro.classify` (pool system & passive learning),
:mod:`repro.metrics`, :mod:`repro.core` (pipeline runtime),
:mod:`repro.ingest` (async live ingestion), :mod:`repro.telemetry`
(runtime metrics + Prometheus/JSON exposition), :mod:`repro.autoscale`
(adaptive batch/credit control), :mod:`repro.eval`.

The legacy facades (``MoniLog``, ``ShardedMoniLog``, and the streaming
variants) remain importable as deprecated shims delegating to
``Pipeline``; see ``docs/api.md`` for the migration table.
"""

from repro.api.pipeline import Pipeline
from repro.api.spec import PipelineSpec
from repro.core.config import IngestConfig, MoniLogConfig
from repro.core.pipeline import MoniLog, PipelineStats
from repro.core.distributed import ShardedMoniLog
from repro.core.reports import AnomalyReport, ClassifiedAlert
from repro.core.streaming import StreamingShardedMoniLog

__version__ = "1.0.0"

__all__ = [
    "AnomalyReport",
    "ClassifiedAlert",
    "IngestConfig",
    "MoniLog",
    "MoniLogConfig",
    "Pipeline",
    "PipelineSpec",
    "PipelineStats",
    "ShardedMoniLog",
    "StreamingShardedMoniLog",
    "__version__",
]
