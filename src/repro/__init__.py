"""MoniLog reproduction: automated log-based anomaly detection.

This package reproduces *MoniLog: An Automated Log-Based Anomaly
Detection System for Cloud Computing Infrastructures* (Vervaet,
ICDE 2021): a three-stage pipeline that structures a multi-source log
stream, detects sequential and quantitative anomalies, and classifies
them into team pools with criticalities learned passively from
administrator actions.

Quickstart::

    from repro import MoniLog
    from repro.datasets import generate_cloud_platform

    data = generate_cloud_platform(sessions=500)
    system = MoniLog()
    system.train(data.records[: len(data.records) // 2])
    for alert in system.run(data.records[len(data.records) // 2:]):
        print(alert.report.summary(), "->", alert.pool, alert.criticality)

Subpackages: :mod:`repro.logs` (data model & streams),
:mod:`repro.datasets` (ground-truthed generators),
:mod:`repro.parsing` (8 template miners + distribution),
:mod:`repro.nn` (numpy LSTM stack), :mod:`repro.detection`
(6 detectors), :mod:`repro.classify` (pool system & passive learning),
:mod:`repro.metrics`, :mod:`repro.core` (pipeline), :mod:`repro.eval`.
"""

from repro.core.config import MoniLogConfig
from repro.core.pipeline import MoniLog
from repro.core.distributed import ShardedMoniLog
from repro.core.reports import AnomalyReport, ClassifiedAlert
from repro.core.streaming import StreamingShardedMoniLog

__version__ = "1.0.0"

__all__ = [
    "AnomalyReport",
    "ClassifiedAlert",
    "MoniLog",
    "MoniLogConfig",
    "ShardedMoniLog",
    "StreamingShardedMoniLog",
    "__version__",
]
