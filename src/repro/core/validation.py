"""Aggregated configuration validation.

Config objects (:class:`~repro.core.config.MoniLogConfig`,
:class:`~repro.core.config.IngestConfig`,
:class:`~repro.api.spec.PipelineSpec`) validate *all* of their knobs
and report every problem in one exception, each line naming the field
— an operator fixing a spec file should see the whole damage at once,
not play whack-a-mole with first-failure errors.
"""

from __future__ import annotations


class ConfigError(ValueError):
    """One aggregated validation failure: every bad field, field-named.

    ``errors`` keeps the individual ``"field: problem"`` strings; the
    exception message joins them, one per line, under a header naming
    the config class.
    """

    def __init__(self, config_name: str, errors: list[str]) -> None:
        self.config_name = config_name
        self.errors = list(errors)
        lines = "\n".join(f"  - {error}" for error in self.errors)
        count = len(self.errors)
        noun = "problem" if count == 1 else "problems"
        super().__init__(f"invalid {config_name} ({count} {noun}):\n{lines}")


class Validator:
    """Collects ``field: problem`` strings, raises once at the end.

    >>> check = Validator("MyConfig")
    >>> check.require(size >= 1, "size", f"must be >= 1, got {size}")
    >>> check.done()  # raises ConfigError listing every failure
    """

    def __init__(self, config_name: str) -> None:
        self.config_name = config_name
        self.errors: list[str] = []

    def require(self, condition: bool, field: str, problem: str) -> None:
        if not condition:
            self.errors.append(f"{field}: {problem}")

    def error(self, field: str, problem: str) -> None:
        self.errors.append(f"{field}: {problem}")

    def done(self) -> None:
        if self.errors:
            raise ConfigError(self.config_name, self.errors)
