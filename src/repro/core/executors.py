"""Pluggable shard executors: how concurrent shard work actually runs.

The sharded runtime (:class:`~repro.core.distributed.ShardedMoniLog`,
:class:`~repro.parsing.distributed.DistributedDrain`) routes work to
shards; *this* module decides how the per-shard tasks execute:

* :class:`SerialExecutor` — one task after another on the calling
  thread.  The reference semantics: every concurrent executor must
  produce byte-identical results to this one.
* :class:`ThreadedExecutor` — a ``concurrent.futures`` thread pool.
  The right choice when shard work overlaps waiting (the dispatch hop
  to a remote shard worker, storage reads) or when the interpreter can
  run threads in parallel; shard state is mutated in place, which is
  safe because every task touches exactly one shard's objects.
* :class:`ProcessExecutor` — a ``multiprocessing`` pool for CPU-bound
  shard work that must escape the GIL (detector fitting, cold parsing).
  Tasks and their results cross a process boundary, so task payloads
  must be picklable and **state does not mutate in place**: tasks
  return the updated shard object and the caller reinstalls it.

The two deployment models meet in one task shape: a task is
``(shard_object, work_item)`` and a module-level function returns the
(possibly new) shard object together with its result.  In-memory
executors hand back the same object they were given; the process
executor hands back the fitted/advanced copy.  Call sites therefore
always reinstall what :meth:`ShardExecutor.map` returns and stay
agnostic of where the work ran.

Executors are process-wide resources, not model state: ``deepcopy``
returns the same instance (snapshotting a sharded parser must not
clone a thread pool) and pickling reduces to the executor's name.

Selection: pass an instance or a name (``"serial"``, ``"thread"``,
``"process"``) to the runtime constructors, set
``MoniLogConfig.executor``, or export ``MONILOG_EXECUTOR`` — the
environment variable is the suite-wide equivalent of the CLI's
``--executor`` flag and is how ``scripts/check.sh`` re-runs the tier-1
tests under the threaded executor.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor as _FuturesProcessPool
from concurrent.futures import ThreadPoolExecutor as _FuturesThreadPool
from typing import Any
from repro.api.registry import register_component

#: Environment variable naming the default executor (see
#: :func:`default_executor_name`).
EXECUTOR_ENV = "MONILOG_EXECUTOR"


def default_executor_name() -> str:
    """The process-wide default executor name.

    Reads ``MONILOG_EXECUTOR`` so a whole test suite or deployment can
    switch executors without touching call sites; falls back to
    ``"serial"``.  A value that names no registered executor fails
    here, loudly and naming the variable — a typo'd environment must
    not silently run serial (or surface as a confusing error far from
    its cause).
    """
    name = os.environ.get(EXECUTOR_ENV, "").strip() or "serial"
    if name not in EXECUTORS:
        raise ValueError(
            f"{EXECUTOR_ENV} must be one of {sorted(EXECUTORS)}, "
            f"got {name!r}"
        )
    return name


class ShardExecutor:
    """How per-shard tasks run; see the module docstring for the menu.

    ``shares_memory`` tells call sites whether task functions observe
    (and may mutate) the caller's objects directly — true for the
    serial and threaded executors, false for the process executor,
    whose tasks operate on pickled copies.  Call sites that keep shard
    state must reinstall the objects :meth:`map` returns; under
    in-memory executors that reinstall is a no-op.
    """

    name: str = "?"
    shares_memory: bool = True

    def map(
        self, function: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> list[Any]:
        """Apply ``function`` to every task; results in task order.

        Concurrency contract: tasks may run in any interleaving, so
        they must not share mutable state with each other.  The sharded
        call sites guarantee this by construction — each task owns
        exactly one shard.
        """
        raise NotImplementedError

    def map_sticky(
        self,
        function: Callable[[Any], Any],
        tasks: Sequence[Any],
        keys: Sequence[int],
    ) -> list[Any]:
        """Like :meth:`map`, but route each task by its integer key.

        The same key always lands on the same worker, so tasks may keep
        per-key warm state *in* the worker (the distributed parser's
        template-store replicas).  In-memory executors share the
        caller's state anyway, so stickiness is vacuous and this
        defaults to :meth:`map`; the process executor overrides it with
        key-pinned worker slots.
        """
        return self.map(function, tasks)

    def close(self) -> None:
        """Release pooled workers (idempotent; pools rebuild lazily)."""

    # Executors are runtime resources: snapshots share them, and a
    # pickled reference rehydrates by name (a pool cannot cross a
    # process boundary).
    def __deepcopy__(self, memo: dict) -> "ShardExecutor":
        return self

    def __reduce__(self):
        return (resolve_executor, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


@register_component("executor", "serial")
class SerialExecutor(ShardExecutor):
    """Run every task inline, in order — the reference executor."""

    name = "serial"
    shares_memory = True

    def map(
        self, function: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> list[Any]:
        return [function(task) for task in tasks]


@register_component("executor", "thread")
class ThreadedExecutor(ShardExecutor):
    """Fan tasks out over a lazily-built thread pool.

    Args:
        max_workers: pool width; defaults to ``os.cpu_count() + 4``
            (capped at 32), the futures default, which leaves headroom
            for latency-bound shard dispatch even on small machines.

    A single task runs inline — there is nothing to overlap, and
    skipping the pool keeps the one-shard degenerate case as cheap as
    :class:`SerialExecutor`.
    """

    name = "thread"
    shares_memory = True

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or min(32, (os.cpu_count() or 1) + 4)
        self._pool: _FuturesThreadPool | None = None

    def _ensure_pool(self) -> _FuturesThreadPool:
        if self._pool is None:
            self._pool = _FuturesThreadPool(
                max_workers=self.max_workers,
                thread_name_prefix="monilog-shard",
            )
        return self._pool

    def map(
        self, function: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> list[Any]:
        if len(tasks) <= 1:
            return [function(task) for task in tasks]
        return list(self._ensure_pool().map(function, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


@register_component("executor", "process")
class ProcessExecutor(ShardExecutor):
    """Fan tasks out over a lazily-built ``multiprocessing`` pool.

    Escapes the GIL for CPU-bound shard work at the price of pickling:
    ``function`` must be a module-level callable and every task and
    result must serialize.  Shard state mutated by a task lives in the
    worker, so the task function must *return* the updated shard
    object — call sites reinstall it (the uniform contract described
    in the module docstring).

    Args:
        max_workers: pool width; defaults to ``os.cpu_count()``.

    A single task runs inline in the parent — this keeps degenerate
    fan-outs cheap and means one-shard configurations never pay for
    serialization at all.
    """

    name = "process"
    shares_memory = False

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self._pool = None
        self._slots: list[_FuturesProcessPool | None] = []

    @staticmethod
    def _context():
        # Never plain fork: by the time a pool is first needed the
        # process may hold live threads (a ThreadedExecutor pool,
        # the caller's own), and forking a multi-threaded process
        # can deadlock children on locks snapshotted mid-hold.
        # Linux uses forkserver — workers fork from a clean,
        # single-threaded server process, keeping startup cheap;
        # other platforms take their default (spawn).
        method = "forkserver" if sys.platform == "linux" else None
        return multiprocessing.get_context(method)

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._context().Pool(processes=self.max_workers)
        return self._pool

    def _slot(self, index: int) -> _FuturesProcessPool:
        if not self._slots:
            self._slots = [None] * self.max_workers
        pool = self._slots[index]
        if pool is None:
            pool = self._slots[index] = _FuturesProcessPool(
                max_workers=1, mp_context=self._context()
            )
        return pool

    def map(
        self, function: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> list[Any]:
        if len(tasks) <= 1:
            return [function(task) for task in tasks]
        return self._ensure_pool().map(function, tasks, chunksize=1)

    def map_sticky(
        self,
        function: Callable[[Any], Any],
        tasks: Sequence[Any],
        keys: Sequence[int],
    ) -> list[Any]:
        """Key-pinned fan-out over single-worker slots.

        Slot ``key % max_workers`` always serves a given key, so
        module-level worker state keyed by the task (the distributed
        parser's shard replicas) survives between calls.  Unlike
        :meth:`map`, a single task is *not* inlined — the whole point
        is that its state lives in the worker, not the parent.
        """
        futures = [
            self._slot(key % self.max_workers).submit(function, task)
            for task, key in zip(tasks, keys)
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        for pool in self._slots:
            if pool is not None:
                pool.shutdown(wait=True)
        self._slots = []


#: Name → constructor, the ``--executor`` / ``MONILOG_EXECUTOR`` menu.
EXECUTORS: dict[str, type[ShardExecutor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadedExecutor.name: ThreadedExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def resolve_executor(
    executor: "str | ShardExecutor | None",
) -> ShardExecutor:
    """Turn an executor spec into an instance.

    ``None`` consults :func:`default_executor_name` (the
    ``MONILOG_EXECUTOR`` environment variable, else serial); a string
    must name a registered executor; an instance passes through.
    """
    if executor is None:
        executor = default_executor_name()
    if isinstance(executor, ShardExecutor):
        return executor
    constructor = EXECUTORS.get(executor)
    if constructor is None:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {sorted(EXECUTORS)}"
        )
    return constructor()
