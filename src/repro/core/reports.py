"""Anomaly reports and classified alerts.

The detection stage emits :class:`AnomalyReport` objects — "anomaly
reports, composed of all the logs linked to the identified anomalous
sequence" (paper §II).  The classification stage wraps them into
:class:`ClassifiedAlert` with a type (pool) and criticality.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.detection.base import DetectionResult
from repro.logs.record import ParsedLog, Severity


@dataclass(frozen=True)
class AnomalyReport:
    """One detected anomalous sequence with all its linked logs."""

    report_id: int
    session_id: str
    events: tuple[ParsedLog, ...]
    detection: DetectionResult

    @property
    def sources(self) -> tuple[str, ...]:
        """The distinct log sources involved, in first-seen order."""
        seen: list[str] = []
        for event in self.events:
            if event.source not in seen:
                seen.append(event.source)
        return tuple(seen)

    @property
    def start_time(self) -> float:
        return min(event.timestamp for event in self.events)

    @property
    def end_time(self) -> float:
        return max(event.timestamp for event in self.events)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def max_severity(self) -> Severity:
        return max(event.record.severity for event in self.events)

    @property
    def templates(self) -> tuple[str, ...]:
        """Distinct templates involved, in first-seen order."""
        seen: list[str] = []
        for event in self.events:
            if event.template not in seen:
                seen.append(event.template)
        return tuple(seen)

    def summary(self) -> str:
        """One-line human summary for dashboards and tests."""
        return (
            f"report #{self.report_id} session={self.session_id} "
            f"events={len(self.events)} sources={','.join(self.sources)} "
            f"severity={self.max_severity.name} score={self.detection.score:.3f}"
        )


@dataclass(frozen=True)
class ClassifiedAlert:
    """An anomaly report with its assigned pool and criticality."""

    report: AnomalyReport
    pool: str
    criticality: str
    confidence: float = 0.0

    def moved_to(self, pool: str) -> "ClassifiedAlert":
        """The alert after an administrator moved it to another pool."""
        return replace(self, pool=pool)

    def with_criticality(self, criticality: str) -> "ClassifiedAlert":
        """The alert after an administrator edited the criticality."""
        return replace(self, criticality=criticality)
