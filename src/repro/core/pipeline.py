"""The MoniLog pipeline: parse → detect → classify (Fig. 1).

:class:`MoniLog` wires the three stages over a multi-source log
stream:

1. a streaming parser structures records into
   :class:`~repro.logs.record.ParsedLog` events;
2. windows of the structured stream go through an anomaly detector,
   producing :class:`~repro.core.reports.AnomalyReport` objects;
3. the report stream is classified into pools with criticalities,
   learning passively from admin actions on the attached
   :class:`~repro.classify.pools.PoolManager`.

Usage is two-phase, matching deployment: :meth:`train` consumes a
(normal-dominated) historical stream to fit the detector, then
:meth:`run` processes live records and yields classified alerts.

:meth:`process_batch` is the batched fast path: it accepts a finite
record list, feeds the parser micro-batches through
:meth:`~repro.parsing.base.Parser.parse_batch` (activating the
exact-match template cache and intra-batch dedup), and returns exactly
the alerts :meth:`run` would yield over the same records — same
sessions, same order, same classifications.  Both entry points share
one window-scoring routine, so parity is structural, not coincidental.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.classify.classifier import AnomalyClassifier
from repro.classify.pools import PoolManager
from repro.core.calibration import DEFAULT_GRIDS, AutoCalibrator
from repro.core.config import MoniLogConfig
from repro.core.reports import AnomalyReport, ClassifiedAlert
from repro.detection.base import Detector
from repro.detection.deeplog import DeepLogDetector
from repro.detection.windows import sessions_from_parsed, sliding_windows
from repro.logs.record import LogRecord, ParsedLog
from repro.parsing.base import Parser, parse_in_batches
from repro.parsing.drain import DrainParser
from repro.parsing.masking import default_masker, no_masker


@dataclass
class PipelineStats:
    """Counters MoniLog keeps while running (Fig. 1 bench rows)."""

    records_parsed: int = 0
    #: Current size of the parser's template inventory.  Refreshed by
    #: every parsing path — training *and* inference — so templates
    #: discovered online during ``run``/``process_batch``/streaming
    #: operation show up here, not just the training-time count.
    templates_discovered: int = 0
    windows_scored: int = 0
    anomalies_detected: int = 0
    alerts_classified: int = 0


class MoniLog:
    """The three-stage anomaly detection system.

    Args:
        parser: stage-1 template miner; defaults to Drain (the paper's
            §IV pick), configured per ``config``.
        detector: stage-2 anomaly detector; defaults to DeepLog.
        config: pipeline configuration; see
            :class:`~repro.core.config.MoniLogConfig`.

    The pool manager and classifier are always constructed and exposed
    so callers can create pools and attach admin simulators before or
    during a run.
    """

    def __init__(
        self,
        parser: Parser | None = None,
        detector: Detector | None = None,
        config: MoniLogConfig | None = None,
    ) -> None:
        self.config = config or MoniLogConfig()
        if parser is None:
            parser = DrainParser(
                masker=default_masker() if self.config.use_masking else no_masker(),
                extract_structured=self.config.extract_structured,
            )
        self.parser = parser
        self.detector = detector if detector is not None else DeepLogDetector()
        self.pools = PoolManager()
        self.classifier = AnomalyClassifier().attach(self.pools)
        self.stats = PipelineStats()
        self._trained = False
        self._report_counter = 0

    # -- stage 1 ---------------------------------------------------------------

    def maybe_calibrate(self, sample: list[LogRecord]) -> None:
        """Replace the parser after a calibration sweep, if configured.

        Implements the acquire → calibrate → parse flow for Drain; only
        meaningful before any parsing happened.
        """
        if not self.config.auto_calibrate:
            return
        if not isinstance(self.parser, DrainParser):
            raise ValueError(
                "auto-calibration is wired for DrainParser; pass a "
                "calibrated parser explicitly for other algorithms"
            )
        masker = self.parser.masker
        extract = self.parser.extract_structured

        def factory(**parameters) -> Parser:
            return DrainParser(
                masker=masker, extract_structured=extract, **parameters
            )

        calibrator = AutoCalibrator(factory, DEFAULT_GRIDS["drain"])
        self.parser = calibrator.calibrated_parser(
            sample[: self.config.calibration_sample]
        )

    def _parse(self, records: Iterable[LogRecord]) -> Iterator[ParsedLog]:
        for record in records:
            parsed = self.parser.parse_record(record)
            self.stats.records_parsed += 1
            yield parsed

    def _window(self, parsed: Iterable[ParsedLog]) -> Iterator[list[ParsedLog]]:
        if self.config.windowing == "session":
            # Session windowing must see the whole stream before
            # closing sessions; materializing per-session lists is the
            # batch equivalent of a session-timeout flush.
            for session in sessions_from_parsed(parsed).values():
                yield session
        else:
            yield from sliding_windows(parsed, self.config.window_size)

    # -- training ---------------------------------------------------------------

    def train(
        self,
        records: Iterable[LogRecord],
        labels_by_session: dict[str, bool] | None = None,
    ) -> "MoniLog":
        """Fit the detector on a historical stream.

        ``labels_by_session`` provides anomaly labels for supervised
        detectors (LogRobust); unsupervised detectors ignore them.
        """
        record_list = list(records)
        self.maybe_calibrate(record_list)
        # Training materializes the stream anyway, so it always takes
        # the batched parse path (identical output to a per-record
        # loop; see Parser.parse_batch).
        parsed = self.parser.parse_batch(record_list)
        self.stats.records_parsed += len(parsed)
        windows = list(self._window(parsed))
        windows = [
            window
            for window in windows
            if len(window) >= self.config.min_window_events
        ]
        labels: list[bool] | None = None
        if labels_by_session is not None:
            labels = [
                labels_by_session.get(window[0].session_id or "", False)
                for window in windows
            ]
        self.detector.fit(windows, labels)
        self.stats.templates_discovered = self.parser.template_count
        self._trained = True
        return self

    # -- running -----------------------------------------------------------------

    def _score_window(self, window: list[ParsedLog]) -> ClassifiedAlert | None:
        """Detect + classify one closed window; None when not alerted.

        The single scoring routine behind :meth:`run` and
        :meth:`process_batch` — both paths produce identical alerts
        because both call this.
        """
        if len(window) < self.config.min_window_events:
            return None
        self.stats.windows_scored += 1
        result = self.detector.detect(window)
        if not result.anomalous:
            return None
        self.stats.anomalies_detected += 1
        report = AnomalyReport(
            report_id=self._report_counter,
            session_id=window[0].session_id or f"window-{self.stats.windows_scored}",
            events=tuple(window),
            detection=result,
        )
        self._report_counter += 1
        alert = self.classifier.classify(report)
        alert = self.pools.deliver(alert)
        self.stats.alerts_classified += 1
        return alert

    def run(self, records: Iterable[LogRecord]) -> Iterator[ClassifiedAlert]:
        """Process a stream; yields classified alerts as windows close."""
        if not self._trained:
            raise RuntimeError("MoniLog.train() must run before run()")
        parsed = self._parse(records)
        try:
            for window in self._window(parsed):
                alert = self._score_window(window)
                if alert is not None:
                    yield alert
        finally:
            # Inference discovers templates too; keep the stat current
            # even when the caller abandons the generator early.
            self.stats.templates_discovered = self.parser.template_count

    def run_all(self, records: Iterable[LogRecord]) -> list[ClassifiedAlert]:
        """Materialized :meth:`run`, for scripts and tests."""
        return list(self.run(records))

    def process_batch(
        self,
        records: Iterable[LogRecord],
        batch_size: int | None = None,
    ) -> list[ClassifiedAlert]:
        """Batched fast path over a finite record list.

        Parses ``records`` in micro-batches of ``batch_size`` (default:
        one batch for the whole list) through the parser's amortized
        :meth:`~repro.parsing.base.Parser.parse_batch`, then windows and
        scores exactly like :meth:`run`.  Alerts are identical to
        ``run_all(records)`` — same sessions, order, criticalities.
        """
        if not self._trained:
            raise RuntimeError("MoniLog.train() must run before process_batch()")
        parsed = parse_in_batches(self.parser, records, batch_size)
        self.stats.records_parsed += len(parsed)
        self.stats.templates_discovered = self.parser.template_count
        alerts = []
        for window in self._window(parsed):
            alert = self._score_window(window)
            if alert is not None:
                alerts.append(alert)
        return alerts
