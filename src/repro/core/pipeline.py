"""The MoniLog pipeline facade (Fig. 1) — now a deprecated shim.

The orchestration that used to live here (parse → detect → classify,
two-phase train/run, the batched fast path) moved into the unified
:class:`repro.api.pipeline.Pipeline`, which composes the same stages
from a :class:`~repro.api.spec.PipelineSpec`.  :class:`MoniLog`
survives as a thin delegating shim so existing scripts keep working —
construction emits a :class:`DeprecationWarning`, and every method
forwards to an internally-held ``Pipeline`` built from the equivalent
spec, so outputs are byte-identical to the old implementation (proven
by ``tests/test_api_parity.py``).

Migrate::

    # before                               # after
    system = MoniLog(config=cfg)           pipeline = Pipeline.from_spec(spec)
    system.train(history)                  pipeline.fit(history)
    alerts = system.run_all(live)          alerts = pipeline.run_all(live)
    system.process_batch(live)             pipeline.process(live)
    system.stats.records_parsed            pipeline.stats().records_parsed

:class:`PipelineStats` still lives here — it is the counters object
both the new and the legacy surface expose.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.core.config import MoniLogConfig
from repro.core.reports import ClassifiedAlert
from repro.detection.base import Detector
from repro.logs.record import LogRecord, ParsedLog
from repro.parsing.base import Parser


@dataclass
class PipelineStats:
    """Counters the pipeline keeps while running (Fig. 1 bench rows)."""

    records_parsed: int = 0
    #: Current size of the parser's template inventory.  Refreshed by
    #: every parsing path — training *and* inference — so templates
    #: discovered online during ``run``/``process``/streaming
    #: operation show up here, not just the training-time count.
    templates_discovered: int = 0
    windows_scored: int = 0
    anomalies_detected: int = 0
    alerts_classified: int = 0


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; build a repro.api.Pipeline from a "
        f"PipelineSpec instead ({new}; see docs/api.md)",
        DeprecationWarning,
        stacklevel=3,
    )


class MoniLog:
    """Deprecated shim over :class:`repro.api.pipeline.Pipeline`.

    The legacy three-stage facade: single parser instance, single
    detector, offline windowing.  Equivalent spec::

        PipelineSpec()  # with masking/windowing/... from MoniLogConfig

    Args:
        parser: stage-1 template miner; defaults to Drain per config.
        detector: stage-2 anomaly detector; defaults to DeepLog.
        config: legacy pipeline configuration.
    """

    def __init__(
        self,
        parser: Parser | None = None,
        detector: Detector | None = None,
        config: MoniLogConfig | None = None,
    ) -> None:
        _deprecated("MoniLog", "Pipeline.from_spec(PipelineSpec(...))")
        from repro.api.pipeline import Pipeline
        from repro.api.spec import PipelineSpec

        self.config = config or MoniLogConfig()
        self._pipeline = Pipeline(
            PipelineSpec.from_config(self.config),
            parser=parser,
            detector=detector,
        )

    # -- delegation -------------------------------------------------------------

    @property
    def parser(self) -> Parser:
        return self._pipeline.parser

    @parser.setter
    def parser(self, parser: Parser) -> None:
        self._pipeline.parser = parser

    @property
    def detector(self) -> Detector:
        return self._pipeline.detector

    @property
    def pools(self):
        return self._pipeline.pools

    @property
    def classifier(self):
        return self._pipeline.classifier

    @property
    def stats(self) -> PipelineStats:
        return self._pipeline.stats()

    @property
    def _trained(self) -> bool:
        return self._pipeline._trained

    @property
    def _report_counter(self) -> int:
        return self._pipeline._report_counter

    def maybe_calibrate(self, sample: list[LogRecord]) -> None:
        self._pipeline.maybe_calibrate(sample)

    def train(
        self,
        records: Iterable[LogRecord],
        labels_by_session: dict[str, bool] | None = None,
    ) -> "MoniLog":
        self._pipeline.fit(records, labels_by_session)
        return self

    def _score_window(self, window: list[ParsedLog]) -> ClassifiedAlert | None:
        return self._pipeline._score_window(window)

    def run(self, records: Iterable[LogRecord]) -> Iterator[ClassifiedAlert]:
        # The offline path explicitly: a streaming facade wrapping this
        # system must not change run()'s whole-stream windowing.
        return self._pipeline.run_offline(records)

    def run_all(self, records: Iterable[LogRecord]) -> list[ClassifiedAlert]:
        return list(self._pipeline.run_offline(records))

    def process_batch(
        self,
        records: Iterable[LogRecord],
        batch_size: int | None = None,
    ) -> list[ClassifiedAlert]:
        # Legacy default: one parse batch for the whole record list.
        return self._pipeline.process_offline(records, batch_size)
