"""Unsupervised auto-parametrization of parsers (paper §IV).

The deployment flow the paper sketches: "First, it acquires a fixed
quantity of loglines within its environment.  Then it calibrates the
value of its parameters by estimating its performance using an
unsupervised metric.  Once it detects the supposed optimal values, it
starts parsing logs."

:class:`AutoCalibrator` implements exactly that: given a parser
factory, a parameter grid, and a sample of records, it parses the
sample under every candidate configuration, scores each with
:func:`repro.metrics.unsupervised.unsupervised_quality`, and returns
the winning parameters.  Experiment X5 validates the approach by
correlating the unsupervised score with the supervised metrics.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.logs.record import LogRecord
from repro.metrics.unsupervised import unsupervised_quality
from repro.parsing.base import Parser


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a calibration sweep."""

    best_parameters: dict[str, object]
    best_score: float
    trials: tuple[tuple[dict[str, object], float], ...]

    def ranking(self) -> list[tuple[dict[str, object], float]]:
        """Trials sorted best-first."""
        return sorted(self.trials, key=lambda trial: -trial[1])


#: Default parameter grids per parser short-name, covering the ranges
#: the original papers recommend.
DEFAULT_GRIDS: dict[str, dict[str, list[object]]] = {
    "drain": {
        "depth": [1, 2, 3, 4],
        "similarity_threshold": [0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
    },
    "spell": {"tau": [0.3, 0.4, 0.5, 0.6, 0.7, 0.8]},
    "lenma": {"threshold": [0.7, 0.8, 0.85, 0.9, 0.95]},
    "shiso": {
        "similarity_threshold": [0.7, 0.8, 0.875, 0.95],
        "max_children": [2, 4, 8],
    },
    "logram": {
        "doublet_threshold": [2, 4, 8, 16],
        "triplet_threshold": [2, 4, 8],
    },
}


def parameter_grid(grid: dict[str, list[object]]) -> list[dict[str, object]]:
    """Expand an axis dict into the list of all combinations."""
    if not grid:
        return [{}]
    names = sorted(grid)
    combinations = itertools.product(*(grid[name] for name in names))
    return [dict(zip(names, values)) for values in combinations]


class AutoCalibrator:
    """Pick parser parameters by unsupervised score on a sample.

    Args:
        parser_factory: callable building a fresh parser from keyword
            parameters (e.g. ``lambda **p: DrainParser(**p)``).
        grid: parameter axes to sweep; see :data:`DEFAULT_GRIDS`.
        seed: seed for the sampling inside the unsupervised metric.
    """

    def __init__(
        self,
        parser_factory: Callable[..., Parser],
        grid: dict[str, list[object]],
        seed: int = 0,
    ) -> None:
        self.parser_factory = parser_factory
        self.grid = grid
        self.seed = seed

    def calibrate(self, sample: Sequence[LogRecord]) -> CalibrationResult:
        """Sweep the grid over ``sample``; returns the ranked outcome."""
        if not sample:
            raise ValueError("calibration requires a non-empty sample")
        trials: list[tuple[dict[str, object], float]] = []
        best_parameters: dict[str, object] | None = None
        best_score = -1.0
        for parameters in parameter_grid(self.grid):
            parser = self.parser_factory(**parameters)
            parsed = parser.parse_all(sample)
            score = unsupervised_quality(parsed, seed=self.seed)
            trials.append((parameters, score))
            if score > best_score:
                best_parameters, best_score = parameters, score
        assert best_parameters is not None
        return CalibrationResult(
            best_parameters=best_parameters,
            best_score=best_score,
            trials=tuple(trials),
        )

    def calibrated_parser(self, sample: Sequence[LogRecord]) -> Parser:
        """The paper's flow in one call: calibrate, then build fresh.

        The returned parser is *unfitted* (template tree empty): the
        calibration parses are throwaways; deployment starts clean with
        the chosen parameters.
        """
        result = self.calibrate(sample)
        return self.parser_factory(**result.best_parameters)
