"""MoniLog core: the end-to-end pipeline and its runtime concerns.

* :mod:`repro.core.reports` — anomaly reports and classified alerts,
  the data flowing between stages 2 and 3.
* :mod:`repro.core.config` — pipeline configuration.
* :mod:`repro.core.pipeline` — :class:`MoniLog`, the three-stage
  system of Fig. 1.
* :mod:`repro.core.distributed` — the sharded runtime demonstrating
  that each stage is distributable (paper §II).
* :mod:`repro.core.calibration` — unsupervised auto-parametrization of
  parsers (paper §IV's acquire → calibrate → parse flow).
"""

from repro.core.reports import AnomalyReport, ClassifiedAlert
from repro.core.config import MoniLogConfig
from repro.core.pipeline import MoniLog
from repro.core.distributed import ShardedMoniLog
from repro.core.calibration import AutoCalibrator, CalibrationResult
from repro.core.streaming import StreamingMoniLog, StreamingSessionizer

__all__ = [
    "AnomalyReport",
    "AutoCalibrator",
    "CalibrationResult",
    "ClassifiedAlert",
    "MoniLog",
    "MoniLogConfig",
    "ShardedMoniLog",
    "StreamingMoniLog",
    "StreamingSessionizer",
]
