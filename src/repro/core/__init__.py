"""MoniLog core: the end-to-end pipeline and its runtime concerns.

* :mod:`repro.core.reports` — anomaly reports and classified alerts,
  the data flowing between stages 2 and 3.
* :mod:`repro.core.config` — pipeline configuration.
* :mod:`repro.core.pipeline` — :class:`MoniLog`, the three-stage
  system of Fig. 1.
* :mod:`repro.core.distributed` — the sharded runtime running each
  stage's shards concurrently (paper §II).
* :mod:`repro.core.executors` — pluggable shard executors (serial /
  thread pool / process pool) behind the sharded runtimes.
* :mod:`repro.core.calibration` — unsupervised auto-parametrization of
  parsers (paper §IV's acquire → calibrate → parse flow).
"""

from repro.core.reports import AnomalyReport, ClassifiedAlert
from repro.core.config import MoniLogConfig
from repro.core.executors import (
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
    ThreadedExecutor,
    resolve_executor,
)
from repro.core.pipeline import MoniLog
from repro.core.distributed import ShardedMoniLog
from repro.core.calibration import AutoCalibrator, CalibrationResult
from repro.core.streaming import (
    StreamingMoniLog,
    StreamingSessionizer,
    StreamingShardedMoniLog,
)

__all__ = [
    "AnomalyReport",
    "AutoCalibrator",
    "CalibrationResult",
    "ClassifiedAlert",
    "EXECUTORS",
    "MoniLog",
    "MoniLogConfig",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardExecutor",
    "ShardedMoniLog",
    "StreamingMoniLog",
    "StreamingSessionizer",
    "StreamingShardedMoniLog",
    "ThreadedExecutor",
    "resolve_executor",
]
