"""The sharded MoniLog runtime (paper §II).

"It is important for MoniLog components to be distributable in order
to ensure scalability."  This module demonstrates the partitioning
strategy for each stage inside one process:

* **parser shards** — records route by source (one code base's
  statements stay on one shard; see
  :class:`~repro.parsing.distributed.DistributedDrain`);
* **detector shards** — structured events route by session id hash, so
  a session's whole window lands on one detector shard and sequence
  models stay correct;
* **classifier** — stateless per alert given the shared model, so a
  single instance suffices here; a real deployment would replicate it
  behind the feedback bus.

Shards drain **micro-batches** rather than single records: the runtime
chops the stream into ``batch_size`` slices and hands each to
:meth:`DistributedDrain.parse_batch`, which routes the slice once and
lets every parser shard exploit its template cache and intra-batch
dedup.  Results are independent of the batch size — ``batch_size=1``
reproduces the per-record behavior exactly.

The runtime exists to *measure* distribution effects (experiment X6
uses the parser half; the pipeline bench F1 reports shard balance),
not to hide them: shard template tables are reconciled, and
:meth:`consistency_with` quantifies agreement with a single-instance
run.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Iterator

from repro.classify.classifier import AnomalyClassifier
from repro.classify.pools import PoolManager
from repro.core.config import MoniLogConfig
from repro.core.reports import AnomalyReport, ClassifiedAlert
from repro.detection.base import Detector
from repro.detection.deeplog import DeepLogDetector
from repro.detection.windows import sessions_from_parsed
from repro.logs.record import LogRecord, ParsedLog
from repro.parsing.base import parse_in_batches
from repro.parsing.distributed import DistributedDrain
from repro.parsing.masking import default_masker, no_masker


def _shard_of(session_id: str, shards: int) -> int:
    return zlib.crc32(session_id.encode("utf-8")) % shards


class ShardedMoniLog:
    """MoniLog with sharded parsing and detection.

    Args:
        parser_shards: Drain shards (stage 1).
        detector_shards: detector replicas (stage 2), each fitted on
            its own partition of training sessions.
        detector_factory: builds one detector per shard; defaults to
            DeepLog with a shard-specific seed.
        config: shared pipeline configuration (session windowing only —
            sliding windows have no session key to route by; a real
            deployment routes those by source instead).
        batch_size: micro-batch size drained into the parser shards.
            Records are routed and parsed ``batch_size`` at a time via
            :meth:`~repro.parsing.distributed.DistributedDrain.parse_batch`,
            which amortizes routing and activates each shard's template
            cache and intra-batch dedup.  Output is identical for every
            batch size (including 1, the old per-record behavior).
    """

    def __init__(
        self,
        parser_shards: int = 4,
        detector_shards: int = 2,
        detector_factory=None,
        config: MoniLogConfig | None = None,
        batch_size: int = 512,
    ) -> None:
        self.config = config or MoniLogConfig()
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        if self.config.windowing != "session":
            raise ValueError(
                "ShardedMoniLog routes detector work by session id and "
                "therefore requires session windowing"
            )
        masker = default_masker() if self.config.use_masking else no_masker()
        self.parser = DistributedDrain(
            shards=parser_shards,
            route_by="source",
            masker=masker,
            extract_structured=self.config.extract_structured,
        )
        if detector_factory is None:
            def detector_factory(shard: int) -> Detector:
                return DeepLogDetector(seed=shard)
        self.detectors: list[Detector] = [
            detector_factory(shard) for shard in range(detector_shards)
        ]
        self.pools = PoolManager()
        self.classifier = AnomalyClassifier().attach(self.pools)
        self._trained = False
        self._report_counter = 0

    @property
    def detector_shards(self) -> int:
        return len(self.detectors)

    # -- training ----------------------------------------------------------------

    def _parse_batched(self, records: Iterable[LogRecord]) -> list[ParsedLog]:
        """Drain micro-batches of ``batch_size`` through the shards."""
        return parse_in_batches(self.parser, records, self.batch_size)

    def train(self, records: Iterable[LogRecord]) -> "ShardedMoniLog":
        """Parse and fit each detector shard on its session partition."""
        parsed = self._parse_batched(records)
        sessions = sessions_from_parsed(parsed)
        partitions: list[list[list[ParsedLog]]] = [
            [] for _ in range(self.detector_shards)
        ]
        for session_id, events in sessions.items():
            if len(events) < self.config.min_window_events:
                continue
            partitions[_shard_of(session_id, self.detector_shards)].append(events)
        for shard, (detector, partition) in enumerate(
            zip(self.detectors, partitions)
        ):
            if not partition:
                raise ValueError(
                    f"detector shard {shard} received no training sessions; "
                    "use fewer shards or more training data"
                )
            detector.fit(partition)
        self._trained = True
        return self

    # -- running -------------------------------------------------------------------

    def run(self, records: Iterable[LogRecord]) -> Iterator[ClassifiedAlert]:
        if not self._trained:
            raise RuntimeError("ShardedMoniLog.train() must run before run()")
        parsed = self._parse_batched(records)
        for session_id, events in sessions_from_parsed(parsed).items():
            if len(events) < self.config.min_window_events:
                continue
            detector = self.detectors[_shard_of(session_id, self.detector_shards)]
            result = detector.detect(events)
            if not result.anomalous:
                continue
            report = AnomalyReport(
                report_id=self._report_counter,
                session_id=session_id,
                events=tuple(events),
                detection=result,
            )
            self._report_counter += 1
            alert = self.pools.deliver(self.classifier.classify(report))
            yield alert

    def run_all(self, records: Iterable[LogRecord]) -> list[ClassifiedAlert]:
        return list(self.run(records))

    # -- measurement -----------------------------------------------------------------

    def consistency_with(
        self,
        reference_verdicts: dict[str, bool],
        records: Iterable[LogRecord],
    ) -> float:
        """Fraction of sessions where this runtime agrees with a reference.

        ``reference_verdicts`` maps session id → anomalous from a
        single-instance run over the same records.
        """
        flagged = {alert.report.session_id for alert in self.run(records)}
        if not reference_verdicts:
            return 1.0
        agreements = sum(
            1
            for session_id, verdict in reference_verdicts.items()
            if (session_id in flagged) == verdict
        )
        return agreements / len(reference_verdicts)
