"""The sharded MoniLog runtime (paper §II).

"It is important for MoniLog components to be distributable in order
to ensure scalability."  This module implements the partitioning
strategy for each stage and actually runs the shards concurrently on a
pluggable :class:`~repro.core.executors.ShardExecutor` (thread pool,
process pool, or serial reference):

* **parser shards** — records route by source (one code base's
  statements stay on one shard; see
  :class:`~repro.parsing.distributed.DistributedDrain`) and the shard
  sub-batches parse side by side;
* **detector shards** — structured events route by session id hash, so
  a session's whole window lands on one detector shard and sequence
  models stay correct; shards fit and score their partitions in
  parallel;
* **classifier** — stateless per alert given the shared model, so a
  single instance suffices here; a real deployment would replicate it
  behind the feedback bus.

Shards drain **micro-batches** rather than single records: the runtime
chops the stream into ``batch_size`` slices and hands each to
:meth:`DistributedDrain.parse_batch`, which routes the slice once and
lets every parser shard exploit its template cache and intra-batch
dedup.  Determinism is preserved by construction — routing fixes which
shard sees which records in which relative order, and all merging
(delivery-order reassembly, report numbering, pool delivery) happens
on the caller's thread — so results are independent of both the batch
size and the executor: ``batch_size=1`` under the serial executor
reproduces the per-record behavior exactly, and every other
configuration reproduces *that*.

The runtime also *measures* distribution effects (experiment X6 uses
the parser half; X9 benches the concurrent speedup; the pipeline bench
F1 reports shard balance): shard template tables are reconciled, and
:meth:`consistency_with` quantifies agreement with a single-instance
run — against a snapshot, so measurement never perturbs live state.
"""

from __future__ import annotations

import copy
import zlib
from collections.abc import Iterable, Iterator

from repro.classify.classifier import AnomalyClassifier
from repro.classify.pools import PoolManager
from repro.core.config import MoniLogConfig
from repro.core.executors import ShardExecutor, resolve_executor
from repro.core.reports import AnomalyReport, ClassifiedAlert
from repro.detection.base import DetectionResult, Detector
from repro.detection.deeplog import DeepLogDetector
from repro.logs.record import LogRecord, ParsedLog
from repro.parsing.base import parse_in_batches
from repro.parsing.distributed import DistributedDrain
from repro.parsing.masking import default_masker, no_masker


def _shard_of(session_id: str, shards: int) -> int:
    return zlib.crc32(session_id.encode("utf-8")) % shards


def _session_key(events: list[ParsedLog]) -> str:
    """The routing key of a closed window.

    Delegates to :attr:`~repro.logs.record.ParsedLog.windowing_key` so
    detector-shard routing and the streaming sessionizer's bucketing
    share one key scheme by construction.
    """
    return events[0].windowing_key


def _sessions_by_key(parsed: Iterable[ParsedLog]) -> dict[str, list[ParsedLog]]:
    """Group events by windowing key, in delivery order.

    The sharded runtime's batch equivalent of the streaming
    sessionizer's bucketing: unsessioned events split into per-source
    pseudo-sessions (one per ``windowing_key``), never into a single
    catch-all, so every window's events all carry the key it routes
    by and batch and streaming operation train/score the same shards.
    For fully-sessioned streams this is exactly
    :func:`~repro.detection.windows.sessions_from_parsed`.
    """
    sessions: dict[str, list[ParsedLog]] = {}
    for event in parsed:
        sessions.setdefault(event.windowing_key, []).append(event)
    return sessions


def _fit_shard(task: tuple[Detector, list[list[ParsedLog]]]) -> Detector:
    """Fit one detector shard on its partition (executor task shape).

    Returns the fitted detector so the caller can reinstall it — the
    same object under in-memory executors, the fitted copy from the
    worker under the process executor.  Module-level so the process
    executor can pickle a reference to it.
    """
    detector, partition = task
    detector.fit(partition)
    return detector


def _detect_shard(
    task: tuple[Detector, list[list[ParsedLog]]],
) -> list[DetectionResult]:
    """Score one detector shard's sessions, in their given order."""
    detector, sessions = task
    return [detector.detect(events) for events in sessions]


class ShardedMoniLog:
    """MoniLog with sharded parsing and detection, executed concurrently.

    Args:
        parser_shards: Drain shards (stage 1).
        detector_shards: detector replicas (stage 2), each fitted on
            its own partition of training sessions.
        detector_factory: builds one detector per shard; defaults to
            DeepLog with a shard-specific seed.
        config: shared pipeline configuration (session windowing only —
            sliding windows have no session key to route by; a real
            deployment routes those by source instead).
        batch_size: micro-batch size drained into the parser shards.
            Records are routed and parsed ``batch_size`` at a time via
            :meth:`~repro.parsing.distributed.DistributedDrain.parse_batch`,
            which amortizes routing and activates each shard's template
            cache and intra-batch dedup.  Output is identical for every
            batch size (including 1, the old per-record behavior).
        executor: a :class:`~repro.core.executors.ShardExecutor`
            instance or name; ``None`` falls back to
            ``config.executor`` (itself defaulting to the
            ``MONILOG_EXECUTOR`` environment variable, else serial).
            Shared with the parser shards.  Alerts are identical under
            every executor; only wall-clock changes.
    """

    def __init__(
        self,
        parser_shards: int = 4,
        detector_shards: int = 2,
        detector_factory=None,
        config: MoniLogConfig | None = None,
        batch_size: int = 512,
        executor: str | ShardExecutor | None = None,
    ) -> None:
        self.config = config or MoniLogConfig()
        if detector_shards < 1:
            raise ValueError(
                f"detector_shards must be >= 1, got {detector_shards}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        if self.config.windowing != "session":
            raise ValueError(
                "ShardedMoniLog routes detector work by session id and "
                "therefore requires session windowing"
            )
        self.executor = resolve_executor(
            executor if executor is not None else self.config.executor
        )
        masker = default_masker() if self.config.use_masking else no_masker()
        self.parser = DistributedDrain(
            shards=parser_shards,
            route_by="source",
            masker=masker,
            extract_structured=self.config.extract_structured,
            executor=self.executor,
        )
        if detector_factory is None:
            def detector_factory(shard: int) -> Detector:
                return DeepLogDetector(seed=shard)
        self.detectors: list[Detector] = [
            detector_factory(shard) for shard in range(detector_shards)
        ]
        self.pools = PoolManager()
        self.classifier = AnomalyClassifier().attach(self.pools)
        self._trained = False
        self._report_counter = 0

    @property
    def detector_shards(self) -> int:
        return len(self.detectors)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release the executor's worker pool.

        Safe to call on a shared executor — pools rebuild lazily on
        next use — and on the serial executor it is a no-op, so callers
        can close unconditionally (or use the runtime as a context
        manager).
        """
        self.executor.close()

    def __enter__(self) -> "ShardedMoniLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- training ----------------------------------------------------------------

    def _parse_batched(self, records: Iterable[LogRecord]) -> list[ParsedLog]:
        """Drain micro-batches of ``batch_size`` through the shards."""
        return parse_in_batches(self.parser, records, self.batch_size)

    def train(self, records: Iterable[LogRecord]) -> "ShardedMoniLog":
        """Parse and fit the detector shards, each on its own partition.

        Shard fits run concurrently on the configured executor; every
        shard's partition (and hence its fitted model) is determined by
        routing alone, so training is executor-independent.
        """
        parsed = self._parse_batched(records)
        sessions = _sessions_by_key(parsed)
        partitions: list[list[list[ParsedLog]]] = [
            [] for _ in range(self.detector_shards)
        ]
        for key, events in sessions.items():
            if len(events) < self.config.min_window_events:
                continue
            partitions[_shard_of(key, self.detector_shards)].append(events)
        for shard, partition in enumerate(partitions):
            if not partition:
                raise ValueError(
                    f"detector shard {shard} received no training sessions; "
                    "use fewer shards or more training data"
                )
        self.detectors = list(self.executor.map(
            _fit_shard, list(zip(self.detectors, partitions))
        ))
        self._trained = True
        return self

    # -- running -------------------------------------------------------------------

    def _detect_keyed(
        self, keyed_sessions: list[tuple[str, list[ParsedLog]]]
    ) -> list[DetectionResult]:
        """Detection results for (key, events) pairs, in input order.

        Sessions group by detector shard and the shard groups score
        concurrently; each shard sees its own sessions in input order,
        so results are executor-independent even for stateful
        detectors.  ``detect`` itself is read-only on every shipped
        detector, which is what makes concurrent scoring safe alongside
        in-place shard state.
        """
        shards = self.detector_shards
        shard_of = [_shard_of(key, shards) for key, _ in keyed_sessions]
        groups: list[list[list[ParsedLog]]] = [[] for _ in range(shards)]
        for (_, events), shard in zip(keyed_sessions, shard_of):
            groups[shard].append(events)
        busy = [shard for shard in range(shards) if groups[shard]]
        outcomes = self.executor.map(
            _detect_shard,
            [(self.detectors[shard], groups[shard]) for shard in busy],
        )
        per_shard = {shard: iter(results)
                     for shard, results in zip(busy, outcomes)}
        return [next(per_shard[shard]) for shard in shard_of]

    def score_sessions(
        self, sessions: Iterable[list[ParsedLog]]
    ) -> list[ClassifiedAlert]:
        """Detect, report, classify, and deliver closed windows.

        The single scoring routine behind :meth:`run` and
        :class:`~repro.core.streaming.StreamingShardedMoniLog`.
        Detection fans out per shard; report numbering, classification,
        and pool delivery run on the calling thread in window order, so
        alert identity and order never depend on the executor.
        """
        if not self._trained:
            raise RuntimeError("ShardedMoniLog.train() must run before scoring")
        keyed = [
            (_session_key(events), events)
            for events in sessions
            if len(events) >= self.config.min_window_events
        ]
        results = self._detect_keyed(keyed)
        alerts: list[ClassifiedAlert] = []
        for (key, events), result in zip(keyed, results):
            if not result.anomalous:
                continue
            report = AnomalyReport(
                report_id=self._report_counter,
                session_id=key,
                events=tuple(events),
                detection=result,
            )
            self._report_counter += 1
            alerts.append(self.pools.deliver(self.classifier.classify(report)))
        return alerts

    def run(self, records: Iterable[LogRecord]) -> Iterator[ClassifiedAlert]:
        """Process a record stream; yields the classified alerts.

        Parsing and detection are batched across shards (and therefore
        eager); alerts yield in session first-seen order, identical
        under every executor and batch size.
        """
        if not self._trained:
            raise RuntimeError("ShardedMoniLog.train() must run before run()")
        parsed = self._parse_batched(records)
        yield from self.score_sessions(_sessions_by_key(parsed).values())

    def run_all(self, records: Iterable[LogRecord]) -> list[ClassifiedAlert]:
        return list(self.run(records))

    # -- measurement -----------------------------------------------------------------

    def consistency_with(
        self,
        reference_verdicts: dict[str, bool],
        records: Iterable[LogRecord],
    ) -> float:
        """Fraction of sessions where this runtime agrees with a reference.

        ``reference_verdicts`` maps session id → anomalous from a
        single-instance run over the same records.

        Measurement is strictly read-only: records parse through a
        *snapshot* of the shard parsers (the live Drain trees learn
        nothing from the probe), detection uses the shards'
        side-effect-free ``detect``, and nothing is reported, numbered,
        classified, or delivered — pool contents and the report counter
        are untouched afterwards.
        """
        if not self._trained:
            raise RuntimeError(
                "ShardedMoniLog.train() must run before consistency_with()"
            )
        parser = copy.deepcopy(self.parser)
        parsed = parse_in_batches(parser, records, self.batch_size)
        keyed = [
            (key, events)
            for key, events in _sessions_by_key(parsed).items()
            if len(events) >= self.config.min_window_events
        ]
        results = self._detect_keyed(keyed)
        flagged = {
            key
            for (key, _), result in zip(keyed, results)
            if result.anomalous
        }
        if not reference_verdicts:
            return 1.0
        agreements = sum(
            1
            for session_id, verdict in reference_verdicts.items()
            if (session_id in flagged) == verdict
        )
        return agreements / len(reference_verdicts)
