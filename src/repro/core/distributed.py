"""The sharded MoniLog runtime (paper §II) — facade now a deprecated shim.

The partitioning strategy lives on: parser shards route by source
(:class:`~repro.parsing.distributed.DistributedDrain`), detector
shards route by session-id hash so sequence models stay correct, and
all merging happens deterministically on the caller's thread — so
results are independent of batch size and executor.  That orchestration
now lives in :class:`repro.api.pipeline.Pipeline` (``spec.shards > 0``
selects it); :class:`ShardedMoniLog` remains as a thin deprecated shim
delegating to a ``Pipeline`` built from the equivalent spec, with
byte-identical output.

This module keeps the routing/partitioning *primitives* the unified
pipeline composes: :func:`_shard_of` (session → detector shard),
:func:`_sessions_by_key` (delivery-order session grouping), and the
module-level executor task functions :func:`_fit_shard` /
:func:`_detect_shard` (module-level so the process executor can pickle
references to them).
"""

from __future__ import annotations

import warnings
import zlib
from collections.abc import Iterable, Iterator

from repro.core.config import MoniLogConfig
from repro.core.executors import ShardExecutor
from repro.core.reports import ClassifiedAlert
from repro.detection.base import DetectionResult, Detector
from repro.logs.record import LogRecord, ParsedLog


def _shard_of(session_id: str, shards: int) -> int:
    return zlib.crc32(session_id.encode("utf-8")) % shards


def _session_key(events: list[ParsedLog]) -> str:
    """The routing key of a closed window.

    Delegates to :attr:`~repro.logs.record.ParsedLog.windowing_key` so
    detector-shard routing and the streaming sessionizer's bucketing
    share one key scheme by construction.
    """
    return events[0].windowing_key


def _sessions_by_key(parsed: Iterable[ParsedLog]) -> dict[str, list[ParsedLog]]:
    """Group events by windowing key, in delivery order.

    The sharded runtime's batch equivalent of the streaming
    sessionizer's bucketing: unsessioned events split into per-source
    pseudo-sessions (one per ``windowing_key``), never into a single
    catch-all, so every window's events all carry the key it routes
    by and batch and streaming operation train/score the same shards.
    For fully-sessioned streams this is exactly
    :func:`~repro.detection.windows.sessions_from_parsed`.
    """
    sessions: dict[str, list[ParsedLog]] = {}
    for event in parsed:
        sessions.setdefault(event.windowing_key, []).append(event)
    return sessions


def _fit_shard(task: tuple[Detector, list[list[ParsedLog]]]) -> Detector:
    """Fit one detector shard on its partition (executor task shape).

    Returns the fitted detector so the caller can reinstall it — the
    same object under in-memory executors, the fitted copy from the
    worker under the process executor.  Module-level so the process
    executor can pickle a reference to it.
    """
    detector, partition = task
    detector.fit(partition)
    return detector


def _detect_shard(
    task: tuple[Detector, list[list[ParsedLog]]],
) -> list[DetectionResult]:
    """Score one detector shard's sessions, in their given order."""
    detector, sessions = task
    return [detector.detect(events) for events in sessions]


class ShardedMoniLog:
    """Deprecated shim over :class:`repro.api.pipeline.Pipeline`.

    The legacy sharded facade.  Equivalent spec::

        PipelineSpec(shards=parser_shards,
                     detector_shards=detector_shards,
                     batch_size=batch_size, executor=...)

    Args are unchanged from the legacy class; ``detector_factory``
    still overrides the per-shard detector construction (the spec
    default builds DeepLog with a shard-specific seed).
    """

    def __init__(
        self,
        parser_shards: int = 4,
        detector_shards: int = 2,
        detector_factory=None,
        config: MoniLogConfig | None = None,
        batch_size: int = 512,
        executor: str | ShardExecutor | None = None,
    ) -> None:
        warnings.warn(
            "ShardedMoniLog is deprecated; build a repro.api.Pipeline "
            "from a PipelineSpec with shards > 0 instead (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.pipeline import Pipeline
        from repro.api.spec import PipelineSpec

        # Validate the legacy-surface knobs with the legacy messages;
        # everything else aggregates in PipelineSpec validation.
        if parser_shards < 1:
            raise ValueError(f"shards must be >= 1, got {parser_shards}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.config = config or MoniLogConfig()
        if self.config.windowing != "session":
            raise ValueError(
                "ShardedMoniLog routes detector work by session id and "
                "therefore requires session windowing"
            )
        spec = PipelineSpec.from_config(
            self.config,
            shards=parser_shards,
            detector_shards=detector_shards,
            batch_size=batch_size,
            executor=self.config.executor,
        )
        self._pipeline = Pipeline(
            spec,
            detector_factory=detector_factory,
            executor=executor,
        )

    # -- delegation -------------------------------------------------------------

    @property
    def parser(self):
        return self._pipeline.parser

    @property
    def detectors(self) -> list[Detector]:
        return self._pipeline.detectors

    @property
    def detector_shards(self) -> int:
        return self._pipeline.detector_shards

    @property
    def batch_size(self) -> int:
        return self._pipeline.batch_size

    @property
    def executor(self) -> ShardExecutor:
        return self._pipeline.executor

    @property
    def pools(self):
        return self._pipeline.pools

    @property
    def classifier(self):
        return self._pipeline.classifier

    @property
    def _trained(self) -> bool:
        return self._pipeline._trained

    @property
    def _report_counter(self) -> int:
        return self._pipeline._report_counter

    def close(self) -> None:
        self._pipeline.close()

    def __enter__(self) -> "ShardedMoniLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def train(self, records: Iterable[LogRecord]) -> "ShardedMoniLog":
        self._pipeline.fit(records)
        return self

    def score_sessions(
        self, sessions: Iterable[list[ParsedLog]]
    ) -> list[ClassifiedAlert]:
        return self._pipeline.score_sessions(sessions)

    def run(self, records: Iterable[LogRecord]) -> Iterator[ClassifiedAlert]:
        # The offline path explicitly: a streaming facade wrapping this
        # system must not change run()'s whole-stream windowing.
        return self._pipeline.run_offline(records)

    def run_all(self, records: Iterable[LogRecord]) -> list[ClassifiedAlert]:
        return list(self._pipeline.run_offline(records))

    def consistency_with(
        self,
        reference_verdicts: dict[str, bool],
        records: Iterable[LogRecord],
    ) -> float:
        return self._pipeline.consistency_with(reference_verdicts, records)
