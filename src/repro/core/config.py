"""Pipeline and ingestion configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.executors import EXECUTORS, default_executor_name
from repro.core.validation import Validator


@dataclass
class MoniLogConfig:
    """Knobs of the end-to-end MoniLog pipeline.

    Attributes:
        windowing: ``"session"`` (group by session id) or
            ``"sliding"`` (fixed-count windows, for streams without
            session ids).
        window_size: events per window when ``windowing="sliding"``.
        extract_structured: run the JSON/XML extraction preliminary
            step before parsing (paper §IV recommendation).
        use_masking: apply the expert regex masker before template
            mining.  Off means fully-automated deployment — the regime
            the paper targets.
        auto_calibrate: calibrate parser parameters on the first
            ``calibration_sample`` records using the unsupervised
            metric before parsing begins (paper §IV's deployment flow).
        calibration_sample: records acquired for calibration.
        min_window_events: windows shorter than this are not scored
            (too little evidence either way).
        executor: how the sharded runtimes execute per-shard work —
            ``"serial"``, ``"thread"``, or ``"process"`` (see
            :mod:`repro.core.executors`).  Defaults to the
            ``MONILOG_EXECUTOR`` environment variable, else serial.
            Results are executor-independent; only wall-clock changes.
    """

    windowing: str = "session"
    window_size: int = 50
    extract_structured: bool = False
    use_masking: bool = True
    auto_calibrate: bool = False
    calibration_sample: int = 2000
    min_window_events: int = 2
    executor: str = field(default_factory=default_executor_name)

    def __post_init__(self) -> None:
        # Aggregated: every bad knob reported at once, field-named.
        check = Validator(type(self).__name__)
        check.require(
            self.windowing in ("session", "sliding"), "windowing",
            f"must be 'session' or 'sliding', got {self.windowing!r}",
        )
        check.require(
            self.executor in EXECUTORS, "executor",
            f"must be one of {sorted(EXECUTORS)}, got {self.executor!r}",
        )
        check.require(self.window_size >= 1, "window_size",
                      f"must be >= 1, got {self.window_size}")
        check.require(
            self.calibration_sample >= 1, "calibration_sample",
            f"must be >= 1, got {self.calibration_sample}",
        )
        check.done()


@dataclass
class IngestConfig:
    """Knobs of the async ingestion front-end (:mod:`repro.ingest`).

    Attributes:
        batch_size: records per micro-batch handed to the pipeline's
            ``process_batch``; a batch also flushes early when it ages
            out.
        max_batch_age: seconds of wall clock a non-empty batch may wait
            before flushing regardless of size — the latency bound a
            trickle source gets.
        lateness: out-of-order tolerance of the live k-way merge, in
            seconds of *event* time: arrival skew between sources up
            to this budget is reordered into exact timestamp order;
            later arrivals are counted late and delivered immediately
            (never dropped).
        credits: total records allowed in flight between the source
            readers and the pipeline (merge buffer + open batch +
            queued work).  When exhausted, readers block — the
            back-pressure that stops fast sources from overrunning a
            slow consumer.
        poll_interval: idle-poll cadence for file tails, and the
            service's watchdog cadence for age flushes.
    """

    batch_size: int = 256
    max_batch_age: float = 0.25
    lateness: float = 0.5
    credits: int = 4096
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        check = Validator(type(self).__name__)
        check.require(self.batch_size >= 1, "batch_size",
                      f"must be >= 1, got {self.batch_size}")
        check.require(self.max_batch_age > 0, "max_batch_age",
                      f"must be > 0, got {self.max_batch_age}")
        check.require(self.lateness >= 0, "lateness",
                      f"must be >= 0, got {self.lateness}")
        check.require(self.credits >= 1, "credits",
                      f"must be >= 1, got {self.credits}")
        check.require(self.poll_interval > 0, "poll_interval",
                      f"must be > 0, got {self.poll_interval}")
        check.done()
