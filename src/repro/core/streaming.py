"""Real-time streaming runtime: record in, alerts out.

:class:`repro.core.pipeline.MoniLog` materializes sessions per call,
which suits experiments; a deployed MoniLog must emit alerts *while
the stream flows* (the paper's real-time requirement).  This module
adds the missing pieces:

* :class:`StreamingSessionizer` — incremental session windowing with
  an idle timeout: a session closes (and is released downstream) when
  no event arrives for ``session_timeout`` seconds of *stream time*,
  or when it reaches ``max_session_events``.  Memory stays bounded by
  the number of concurrently open sessions.
* :class:`StreamingMoniLog` — wraps a *trained* pipeline and exposes
  ``process(record) -> list[ClassifiedAlert]``: feed records as they
  arrive, collect alerts the moment their session closes, ``flush()``
  at shutdown.
* :class:`StreamingShardedMoniLog` — the same façade over a trained
  :class:`~repro.core.distributed.ShardedMoniLog`: micro-batches parse
  across the parser shards concurrently, closed sessions score across
  the detector shards concurrently, and alert identity and order stay
  executor-independent.
* :class:`BatchHandoff` — the thread-safe hand-off point between an
  asynchronous ingestion front-end (:mod:`repro.ingest`) and either
  streaming façade, with a live queue-depth signal the front-end's
  credit-based back-pressure keys off.

For high-throughput ingestion, ``process_batch(records)`` is the
amortized entry point: a micro-batch is parsed in one
:meth:`~repro.parsing.base.Parser.parse_batch` call (template cache +
intra-batch dedup), then pushed through the sessionizer event by
event.  Because parsing never reads sessionizer state and
sessionization never feeds back into the parser, batch-then-push
yields exactly the alerts a ``process()`` loop would, in the same
order.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable, Iterator

from repro.core.distributed import ShardedMoniLog
from repro.core.pipeline import MoniLog
from repro.core.reports import ClassifiedAlert
from repro.logs.record import LogRecord, ParsedLog
from repro.parsing.base import parse_in_batches


class StreamingSessionizer:
    """Incremental session windowing with idle timeout.

    Sessions are keyed by the record's session id; events without one
    fall into per-source pseudo-sessions (source name as key), which
    the timeout then chops into activity bursts — a pragmatic stand-in
    for sliding windows in streaming mode.

    ``push`` returns the sessions *closed by* the new event's arrival
    time; ``flush`` closes everything (end of stream).

    Stream time is taken from event timestamps, which real streams
    deliver out of order (multi-node skew, replayed backlogs).  The
    sessionizer measures idleness against the stream's **high-water
    clock** — the maximum timestamp seen so far: every arrival marks
    its session active *as of that clock*, and a session closes when
    no event has arrived for ``session_timeout`` seconds of high-water
    time.  For in-order streams this is exactly the per-event clock;
    under clock regressions it is deliberately conservative: a stale
    event neither closes sessions (the clock does not advance) nor
    makes any session — its own or a new one — look idle (sessions
    are marked active at the clock, never at a stale timestamp, so
    nothing closes early and no stale-stamped session can wedge the
    expiry queue).  This is also what makes expiry cheap: activity
    marks are monotone, so the open table stays ordered by last
    activity and the expiry scan stops at the first fresh session.
    Late events still join their session's bucket normally.
    """

    def __init__(
        self,
        session_timeout: float = 30.0,
        max_session_events: int = 1000,
    ) -> None:
        if session_timeout <= 0:
            raise ValueError(
                f"session_timeout must be > 0, got {session_timeout}"
            )
        if max_session_events < 1:
            raise ValueError(
                f"max_session_events must be >= 1, got {max_session_events}"
            )
        self.session_timeout = session_timeout
        self.max_session_events = max_session_events
        # Ordered by last activity: expiry scans stop at the first
        # still-fresh session.  Sorted by construction because every
        # activity mark is the (monotone) high-water clock.
        self._open: OrderedDict[str, list[ParsedLog]] = OrderedDict()
        self._last_seen: dict[str, float] = {}
        self._clock = float("-inf")

    @property
    def open_sessions(self) -> int:
        return len(self._open)

    def push(self, event: ParsedLog) -> list[list[ParsedLog]]:
        """Add one event; return sessions closed by the advancing clock."""
        key = event.windowing_key
        self._clock = max(self._clock, event.timestamp)
        closed = self._expire(self._clock)
        bucket = self._open.get(key)
        if bucket is None:
            bucket = []
            self._open[key] = bucket
        bucket.append(event)
        # Mark the session active as of the high-water clock (not the
        # event's own, possibly stale, timestamp): activity marks stay
        # monotone, so ``_open`` remains sorted by last activity — the
        # invariant that lets ``_expire`` stop at the first fresh
        # session — and a late event can never make a session look
        # idle or park a fresh session behind a stale one.
        self._last_seen[key] = self._clock
        self._open.move_to_end(key)
        if len(bucket) >= self.max_session_events:
            closed.append(self._close(key))
        return closed

    def _expire(self, now: float) -> list[list[ParsedLog]]:
        closed: list[list[ParsedLog]] = []
        deadline = now - self.session_timeout
        while self._open:
            key = next(iter(self._open))
            if self._last_seen[key] > deadline:
                break
            closed.append(self._close(key))
        return closed

    def _close(self, key: str) -> list[ParsedLog]:
        self._last_seen.pop(key, None)
        return self._open.pop(key)

    def flush(self) -> list[list[ParsedLog]]:
        """Close every open session (stream shutdown)."""
        remaining = [self._close(key) for key in list(self._open)]
        return remaining


class StreamingMoniLog:
    """Record-at-a-time façade over a trained :class:`MoniLog`.

    The wrapped pipeline supplies the parser, detector, classifier,
    pool manager, *and the scoring routine* — closed sessions go
    through :meth:`MoniLog._score_window`, the same code path
    ``run``/``process_batch`` use, so report numbering and the
    fallback window ids of unsessioned bursts are identical between
    batch and streaming operation by construction.

    >>> system = MoniLog().train(history)          # doctest: +SKIP
    >>> live = StreamingMoniLog(system, session_timeout=10.0)
    >>> for record in tail_the_stream():           # doctest: +SKIP
    ...     for alert in live.process(record):
    ...         page_someone(alert)
    >>> live.flush()                               # doctest: +SKIP
    """

    def __init__(
        self,
        system: MoniLog,
        session_timeout: float = 30.0,
        max_session_events: int = 1000,
    ) -> None:
        if not system._trained:
            raise RuntimeError(
                "StreamingMoniLog wraps a trained MoniLog; call train() first"
            )
        self.system = system
        self.sessionizer = StreamingSessionizer(
            session_timeout=session_timeout,
            max_session_events=max_session_events,
        )

    def _score(self, session: list[ParsedLog]) -> ClassifiedAlert | None:
        return self.system._score_window(session)

    def process(self, record: LogRecord) -> list[ClassifiedAlert]:
        """Feed one record; return alerts for sessions it closed."""
        parsed = self.system.parser.parse_record(record)
        stats = self.system.stats
        stats.records_parsed += 1
        stats.templates_discovered = self.system.parser.template_count
        alerts = []
        for session in self.sessionizer.push(parsed):
            alert = self._score(session)
            if alert is not None:
                alerts.append(alert)
        return alerts

    def process_batch(self, records: Iterable[LogRecord]) -> list[ClassifiedAlert]:
        """Feed a micro-batch; return alerts for sessions it closed.

        Equivalent to ``[a for r in records for a in self.process(r)]``
        — identical alerts in identical order — but the whole batch is
        parsed in one amortized :meth:`Parser.parse_batch` call before
        sessionization.
        """
        records = list(records)
        parsed = self.system.parser.parse_batch(records)
        stats = self.system.stats
        stats.records_parsed += len(parsed)
        stats.templates_discovered = self.system.parser.template_count
        alerts = []
        for event in parsed:
            for session in self.sessionizer.push(event):
                alert = self._score(session)
                if alert is not None:
                    alerts.append(alert)
        return alerts

    def process_stream(
        self, records: Iterable[LogRecord]
    ) -> Iterator[ClassifiedAlert]:
        """Generator form of :meth:`process` + terminal :meth:`flush`."""
        for record in records:
            yield from self.process(record)
        yield from self.flush()

    def flush(self) -> list[ClassifiedAlert]:
        """Close all open sessions and score them (stream shutdown)."""
        alerts = []
        for session in self.sessionizer.flush():
            alert = self._score(session)
            if alert is not None:
                alerts.append(alert)
        return alerts


class StreamingShardedMoniLog:
    """Record-at-a-time façade over a trained :class:`ShardedMoniLog`.

    Combines the two scalability levers: micro-batches drain into the
    parser shards concurrently (one routed
    :meth:`~repro.parsing.distributed.DistributedDrain.parse_batch`
    per ``batch_size`` slice, shard sub-batches side by side on the
    system's executor), and the sessions a batch closes score across
    the detector shards concurrently via
    :meth:`ShardedMoniLog.score_sessions`.  Sessionization sits between
    the two stages on the calling thread, so alert identity and order
    match a record-at-a-time loop exactly, under every executor.

    Args:
        system: a *trained* sharded runtime; supplies parser shards,
            detector shards, classifier, pools, and the executor.
        session_timeout / max_session_events: see
            :class:`StreamingSessionizer`.
        batch_size: micro-batch size for :meth:`process_batch`;
            defaults to the system's ``batch_size``.
    """

    def __init__(
        self,
        system: ShardedMoniLog,
        session_timeout: float = 30.0,
        max_session_events: int = 1000,
        batch_size: int | None = None,
    ) -> None:
        if not system._trained:
            raise RuntimeError(
                "StreamingShardedMoniLog wraps a trained ShardedMoniLog; "
                "call train() first"
            )
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.system = system
        self.batch_size = batch_size or system.batch_size
        self.sessionizer = StreamingSessionizer(
            session_timeout=session_timeout,
            max_session_events=max_session_events,
        )

    def process(self, record: LogRecord) -> list[ClassifiedAlert]:
        """Feed one record; return alerts for sessions it closed."""
        parsed = self.system.parser.parse_record(record)
        closed = self.sessionizer.push(parsed)
        return self.system.score_sessions(closed) if closed else []

    def process_batch(self, records: Iterable[LogRecord]) -> list[ClassifiedAlert]:
        """Feed a micro-batch; return alerts for sessions it closed.

        The batch parses ``batch_size`` records at a time across the
        parser shards, events push through the sessionizer in delivery
        order, and every session the batch closes scores in one
        concurrent :meth:`ShardedMoniLog.score_sessions` call — in
        close order, so output equals a :meth:`process` loop exactly.
        """
        parsed = parse_in_batches(self.system.parser, records, self.batch_size)
        closed: list[list[ParsedLog]] = []
        for event in parsed:
            closed.extend(self.sessionizer.push(event))
        return self.system.score_sessions(closed) if closed else []

    def process_stream(
        self, records: Iterable[LogRecord]
    ) -> Iterator[ClassifiedAlert]:
        """Generator form of :meth:`process` + terminal :meth:`flush`."""
        for record in records:
            yield from self.process(record)
        yield from self.flush()

    def flush(self) -> list[ClassifiedAlert]:
        """Close all open sessions and score them (stream shutdown)."""
        closed = self.sessionizer.flush()
        return self.system.score_sessions(closed) if closed else []


class BatchHandoff:
    """Hand micro-batches to a streaming pipeline; expose queue depth.

    The async ingestion service scores off the event loop: batches are
    submitted from executor threads while readers keep filling buffers
    on the loop.  This class is the boundary object between the two
    worlds.  It delegates to the wrapped pipeline's ``process_batch``
    and ``flush`` and maintains a **depth signal** — records submitted
    but not yet fully processed — that producers read to decide how
    hard to push (the credit gate sizes itself against exactly this
    window).

    Depth accounting is thread-safe; the *pipeline* is not expected to
    be.  Callers must serialize ``submit`` calls (the ingestion
    service awaits each batch before dispatching the next), which also
    keeps alert order deterministic.  ``depth``/``in_flight`` may be
    read from any thread at any time.
    """

    def __init__(self, pipeline) -> None:
        self.pipeline = pipeline
        self._lock = threading.Lock()
        self._depth = 0
        self._in_flight = 0
        self.peak_depth = 0
        self.batches = 0
        self.records = 0

    @property
    def depth(self) -> int:
        """Records submitted and not yet fully processed."""
        return self._depth

    @property
    def in_flight(self) -> int:
        """Batches currently inside ``process_batch``."""
        return self._in_flight

    def submit(self, records: Iterable[LogRecord]) -> list[ClassifiedAlert]:
        """Process one micro-batch; returns the alerts it closed."""
        records = list(records)
        with self._lock:
            self._depth += len(records)
            self._in_flight += 1
            self.peak_depth = max(self.peak_depth, self._depth)
        try:
            return self.pipeline.process_batch(records)
        finally:
            with self._lock:
                self._depth -= len(records)
                self._in_flight -= 1
                self.batches += 1
                self.records += len(records)

    def flush(self) -> list[ClassifiedAlert]:
        """Flush the wrapped pipeline's open sessions, if it has any."""
        flush = getattr(self.pipeline, "flush", None)
        return flush() if flush is not None else []
