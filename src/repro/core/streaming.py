"""Real-time streaming runtime: record in, alerts out.

Two durable pieces live here:

* :class:`StreamingSessionizer` — incremental session windowing with
  an idle timeout: a session closes (and is released downstream) when
  no event arrives for ``session_timeout`` seconds of *stream time*,
  or when it reaches ``max_session_events``.  Memory stays bounded by
  the number of concurrently open sessions.  This is the component the
  unified :class:`repro.api.pipeline.Pipeline` installs in streaming
  mode (registered as sessionizer ``"streaming"``).
* :class:`BatchHandoff` — the thread-safe hand-off point between an
  asynchronous ingestion front-end (:mod:`repro.ingest`) and any
  streaming pipeline, with a live queue-depth signal the front-end's
  credit-based back-pressure keys off.

The two facades that used to orchestrate streaming —
:class:`StreamingMoniLog` and :class:`StreamingShardedMoniLog` — are
now thin deprecated shims: the unified ``Pipeline`` provides the same
record-at-a-time operation (``spec.streaming=True`` or
``pipeline.stream()``), with byte-identical alerts in identical order
(report numbering and the fallback window ids of unsessioned bursts
come from the same scoring routine as the batch paths, by
construction).
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import OrderedDict
from collections.abc import Iterable, Iterator

from repro.api.registry import register_component
from repro.core.distributed import ShardedMoniLog
from repro.core.pipeline import MoniLog
from repro.core.reports import ClassifiedAlert
from repro.logs.record import LogRecord, ParsedLog


@register_component("sessionizer", "streaming")
class StreamingSessionizer:
    """Incremental session windowing with idle timeout.

    Sessions are keyed by the record's session id; events without one
    fall into per-source pseudo-sessions (source name as key), which
    the timeout then chops into activity bursts — a pragmatic stand-in
    for sliding windows in streaming mode.

    ``push`` returns the sessions *closed by* the new event's arrival
    time; ``flush`` closes everything (end of stream).

    Stream time is taken from event timestamps, which real streams
    deliver out of order (multi-node skew, replayed backlogs).  The
    sessionizer measures idleness against the stream's **high-water
    clock** — the maximum timestamp seen so far: every arrival marks
    its session active *as of that clock*, and a session closes when
    no event has arrived for ``session_timeout`` seconds of high-water
    time.  For in-order streams this is exactly the per-event clock;
    under clock regressions it is deliberately conservative: a stale
    event neither closes sessions (the clock does not advance) nor
    makes any session — its own or a new one — look idle (sessions
    are marked active at the clock, never at a stale timestamp, so
    nothing closes early and no stale-stamped session can wedge the
    expiry queue).  This is also what makes expiry cheap: activity
    marks are monotone, so the open table stays ordered by last
    activity and the expiry scan stops at the first fresh session.
    Late events still join their session's bucket normally.
    """

    def __init__(
        self,
        session_timeout: float = 30.0,
        max_session_events: int = 1000,
    ) -> None:
        if session_timeout <= 0:
            raise ValueError(
                f"session_timeout must be > 0, got {session_timeout}"
            )
        if max_session_events < 1:
            raise ValueError(
                f"max_session_events must be >= 1, got {max_session_events}"
            )
        self.session_timeout = session_timeout
        self.max_session_events = max_session_events
        # Ordered by last activity: expiry scans stop at the first
        # still-fresh session.  Sorted by construction because every
        # activity mark is the (monotone) high-water clock.
        self._open: OrderedDict[str, list[ParsedLog]] = OrderedDict()
        self._last_seen: dict[str, float] = {}
        self._clock = float("-inf")

    @property
    def open_sessions(self) -> int:
        return len(self._open)

    def push(self, event: ParsedLog) -> list[list[ParsedLog]]:
        """Add one event; return sessions closed by the advancing clock."""
        key = event.windowing_key
        self._clock = max(self._clock, event.timestamp)
        closed = self._expire(self._clock)
        bucket = self._open.get(key)
        if bucket is None:
            bucket = []
            self._open[key] = bucket
        bucket.append(event)
        # Mark the session active as of the high-water clock (not the
        # event's own, possibly stale, timestamp): activity marks stay
        # monotone, so ``_open`` remains sorted by last activity — the
        # invariant that lets ``_expire`` stop at the first fresh
        # session — and a late event can never make a session look
        # idle or park a fresh session behind a stale one.
        self._last_seen[key] = self._clock
        self._open.move_to_end(key)
        if len(bucket) >= self.max_session_events:
            closed.append(self._close(key))
        return closed

    def _expire(self, now: float) -> list[list[ParsedLog]]:
        closed: list[list[ParsedLog]] = []
        deadline = now - self.session_timeout
        while self._open:
            key = next(iter(self._open))
            if self._last_seen[key] > deadline:
                break
            closed.append(self._close(key))
        return closed

    def _close(self, key: str) -> list[ParsedLog]:
        self._last_seen.pop(key, None)
        return self._open.pop(key)

    def flush(self) -> list[list[ParsedLog]]:
        """Close every open session (stream shutdown)."""
        remaining = [self._close(key) for key in list(self._open)]
        return remaining


def _streaming_shim_warning(old: str) -> None:
    warnings.warn(
        f"{old} is deprecated; build a repro.api.Pipeline with "
        "spec.streaming=True (or call pipeline.stream()) instead "
        "(see docs/api.md)",
        DeprecationWarning,
        stacklevel=3,
    )


class StreamingMoniLog:
    """Deprecated shim: record-at-a-time facade over a trained system.

    Equivalent: a :class:`~repro.api.pipeline.Pipeline` with
    ``spec.streaming=True`` (or ``pipeline.stream()`` after fitting).
    The shim arms streaming mode on the wrapped system's underlying
    pipeline, so report numbering continues seamlessly across the
    wrapped system's batch and streaming operation — exactly the
    legacy behavior.
    """

    def __init__(
        self,
        system: MoniLog,
        session_timeout: float = 30.0,
        max_session_events: int = 1000,
    ) -> None:
        _streaming_shim_warning("StreamingMoniLog")
        if not system._trained:
            raise RuntimeError(
                "StreamingMoniLog wraps a trained MoniLog; call train() first"
            )
        self.system = system
        self._pipeline = system._pipeline
        self._pipeline.stream(
            session_timeout=session_timeout,
            max_session_events=max_session_events,
        )

    @property
    def sessionizer(self) -> StreamingSessionizer:
        return self._pipeline.sessionizer

    def process(self, record: LogRecord) -> list[ClassifiedAlert]:
        """Feed one record; return alerts for sessions it closed."""
        return self._pipeline.process_record(record)

    def process_batch(self, records: Iterable[LogRecord]) -> list[ClassifiedAlert]:
        """Feed a micro-batch; return alerts for sessions it closed."""
        return self._pipeline.process(records, batch_size=None)

    def process_stream(
        self, records: Iterable[LogRecord]
    ) -> Iterator[ClassifiedAlert]:
        """Generator form of :meth:`process` + terminal :meth:`flush`."""
        return self._pipeline.run(records)

    def flush(self) -> list[ClassifiedAlert]:
        """Close all open sessions and score them (stream shutdown)."""
        return self._pipeline.flush()


class StreamingShardedMoniLog:
    """Deprecated shim: record-at-a-time facade over a trained
    :class:`~repro.core.distributed.ShardedMoniLog`.

    Equivalent: a sharded :class:`~repro.api.pipeline.Pipeline`
    (``spec.shards > 0``) with streaming armed.  Micro-batches parse
    across the parser shards concurrently and closed sessions score
    across the detector shards concurrently; alert identity and order
    stay executor-independent.
    """

    def __init__(
        self,
        system: ShardedMoniLog,
        session_timeout: float = 30.0,
        max_session_events: int = 1000,
        batch_size: int | None = None,
    ) -> None:
        _streaming_shim_warning("StreamingShardedMoniLog")
        if not system._trained:
            raise RuntimeError(
                "StreamingShardedMoniLog wraps a trained ShardedMoniLog; "
                "call train() first"
            )
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.system = system
        self.batch_size = batch_size or system.batch_size
        self._pipeline = system._pipeline
        self._pipeline.stream(
            session_timeout=session_timeout,
            max_session_events=max_session_events,
        )

    @property
    def sessionizer(self) -> StreamingSessionizer:
        return self._pipeline.sessionizer

    def process(self, record: LogRecord) -> list[ClassifiedAlert]:
        """Feed one record; return alerts for sessions it closed."""
        return self._pipeline.process_record(record)

    def process_batch(self, records: Iterable[LogRecord]) -> list[ClassifiedAlert]:
        """Feed a micro-batch; return alerts for sessions it closed."""
        return self._pipeline.process(records, batch_size=self.batch_size)

    def process_stream(
        self, records: Iterable[LogRecord]
    ) -> Iterator[ClassifiedAlert]:
        """Generator form of :meth:`process` + terminal :meth:`flush`."""
        return self._pipeline.run(records)

    def flush(self) -> list[ClassifiedAlert]:
        """Close all open sessions and score them (stream shutdown)."""
        return self._pipeline.flush()


class BatchHandoff:
    """Hand micro-batches to a streaming pipeline; expose queue depth.

    The async ingestion service scores off the event loop: batches are
    submitted from executor threads while readers keep filling buffers
    on the loop.  This class is the boundary object between the two
    worlds.  It delegates to the wrapped pipeline's ``process_batch``
    (or ``process``) and ``flush`` and maintains a **depth signal** —
    records submitted but not yet fully processed — that producers
    read to decide how hard to push (the credit gate sizes itself
    against exactly this window).

    Depth accounting is thread-safe; the *pipeline* is not expected to
    be.  Callers must serialize ``submit`` calls (the ingestion
    service awaits each batch before dispatching the next), which also
    keeps alert order deterministic.  ``depth``/``in_flight`` may be
    read from any thread at any time.
    """

    def __init__(self, pipeline) -> None:
        self.pipeline = pipeline
        submit = getattr(pipeline, "process_batch", None)
        self._submit = submit if submit is not None else pipeline.process
        self._lock = threading.Lock()
        self._depth = 0
        self._in_flight = 0
        self.peak_depth = 0
        self.batches = 0
        self.records = 0
        #: Seconds spent inside ``process_batch`` (cumulative) and the
        #: last batch's duration — the per-batch latency signal the
        #: autoscale controller sizes micro-batches from.
        self.busy_seconds = 0.0
        self.last_batch_seconds = 0.0

    @property
    def depth(self) -> int:
        """Records submitted and not yet fully processed."""
        return self._depth

    @property
    def in_flight(self) -> int:
        """Batches currently inside ``process_batch``."""
        return self._in_flight

    def submit(self, records: Iterable[LogRecord]) -> list[ClassifiedAlert]:
        """Process one micro-batch; returns the alerts it closed."""
        records = list(records)
        with self._lock:
            self._depth += len(records)
            self._in_flight += 1
            self.peak_depth = max(self.peak_depth, self._depth)
        started = time.perf_counter()
        try:
            return self._submit(records)
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self._depth -= len(records)
                self._in_flight -= 1
                self.batches += 1
                self.records += len(records)
                self.busy_seconds += elapsed
                self.last_batch_seconds = elapsed

    def flush(self) -> list[ClassifiedAlert]:
        """Flush the wrapped pipeline's open sessions, if it has any."""
        flush = getattr(self.pipeline, "flush", None)
        return flush() if flush is not None else []
