"""Real-time streaming runtime: record in, alerts out.

:class:`repro.core.pipeline.MoniLog` materializes sessions per call,
which suits experiments; a deployed MoniLog must emit alerts *while
the stream flows* (the paper's real-time requirement).  This module
adds the missing piece:

* :class:`StreamingSessionizer` — incremental session windowing with
  an idle timeout: a session closes (and is released downstream) when
  no event arrives for ``session_timeout`` seconds of *stream time*,
  or when it reaches ``max_session_events``.  Memory stays bounded by
  the number of concurrently open sessions.
* :class:`StreamingMoniLog` — wraps a *trained* pipeline and exposes
  ``process(record) -> list[ClassifiedAlert]``: feed records as they
  arrive, collect alerts the moment their session closes, ``flush()``
  at shutdown.

For high-throughput ingestion, ``process_batch(records)`` is the
amortized entry point: a micro-batch is parsed in one
:meth:`~repro.parsing.base.Parser.parse_batch` call (template cache +
intra-batch dedup), then pushed through the sessionizer event by
event.  Because parsing never reads sessionizer state and
sessionization never feeds back into the parser, batch-then-push
yields exactly the alerts a ``process()`` loop would, in the same
order.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Iterator

from repro.core.pipeline import MoniLog
from repro.core.reports import AnomalyReport, ClassifiedAlert
from repro.logs.record import LogRecord, ParsedLog


class StreamingSessionizer:
    """Incremental session windowing with idle timeout.

    Sessions are keyed by the record's session id; events without one
    fall into per-source pseudo-sessions (source name as key), which
    the timeout then chops into activity bursts — a pragmatic stand-in
    for sliding windows in streaming mode.

    ``push`` returns the sessions *closed by* the new event's arrival
    time; ``flush`` closes everything (end of stream).
    """

    def __init__(
        self,
        session_timeout: float = 30.0,
        max_session_events: int = 1000,
    ) -> None:
        if session_timeout <= 0:
            raise ValueError(
                f"session_timeout must be > 0, got {session_timeout}"
            )
        if max_session_events < 1:
            raise ValueError(
                f"max_session_events must be >= 1, got {max_session_events}"
            )
        self.session_timeout = session_timeout
        self.max_session_events = max_session_events
        # Ordered by last activity: expiry scans stop at the first
        # still-fresh session.
        self._open: OrderedDict[str, list[ParsedLog]] = OrderedDict()
        self._last_seen: dict[str, float] = {}

    @property
    def open_sessions(self) -> int:
        return len(self._open)

    def push(self, event: ParsedLog) -> list[list[ParsedLog]]:
        """Add one event; return sessions closed by the advancing clock."""
        key = event.session_id or f"source:{event.source}"
        closed = self._expire(event.timestamp)
        bucket = self._open.get(key)
        if bucket is None:
            bucket = []
            self._open[key] = bucket
        bucket.append(event)
        self._last_seen[key] = event.timestamp
        self._open.move_to_end(key)
        if len(bucket) >= self.max_session_events:
            closed.append(self._close(key))
        return closed

    def _expire(self, now: float) -> list[list[ParsedLog]]:
        closed: list[list[ParsedLog]] = []
        deadline = now - self.session_timeout
        while self._open:
            key = next(iter(self._open))
            if self._last_seen[key] > deadline:
                break
            closed.append(self._close(key))
        return closed

    def _close(self, key: str) -> list[ParsedLog]:
        self._last_seen.pop(key, None)
        return self._open.pop(key)

    def flush(self) -> list[list[ParsedLog]]:
        """Close every open session (stream shutdown)."""
        remaining = [self._close(key) for key in list(self._open)]
        return remaining


class StreamingMoniLog:
    """Record-at-a-time façade over a trained :class:`MoniLog`.

    The wrapped pipeline supplies the parser, detector, classifier and
    pool manager (so passive learning keeps working); this class owns
    only the incremental windowing.

    >>> system = MoniLog().train(history)          # doctest: +SKIP
    >>> live = StreamingMoniLog(system, session_timeout=10.0)
    >>> for record in tail_the_stream():           # doctest: +SKIP
    ...     for alert in live.process(record):
    ...         page_someone(alert)
    >>> live.flush()                               # doctest: +SKIP
    """

    def __init__(
        self,
        system: MoniLog,
        session_timeout: float = 30.0,
        max_session_events: int = 1000,
    ) -> None:
        if not system._trained:
            raise RuntimeError(
                "StreamingMoniLog wraps a trained MoniLog; call train() first"
            )
        self.system = system
        self.sessionizer = StreamingSessionizer(
            session_timeout=session_timeout,
            max_session_events=max_session_events,
        )
        self._report_counter = 0

    def _score(self, session: list[ParsedLog]) -> ClassifiedAlert | None:
        if len(session) < self.system.config.min_window_events:
            return None
        self.system.stats.windows_scored += 1
        result = self.system.detector.detect(session)
        if not result.anomalous:
            return None
        self.system.stats.anomalies_detected += 1
        report = AnomalyReport(
            report_id=self._report_counter,
            session_id=session[0].session_id or f"burst-{self._report_counter}",
            events=tuple(session),
            detection=result,
        )
        self._report_counter += 1
        alert = self.system.classifier.classify(report)
        alert = self.system.pools.deliver(alert)
        self.system.stats.alerts_classified += 1
        return alert

    def process(self, record: LogRecord) -> list[ClassifiedAlert]:
        """Feed one record; return alerts for sessions it closed."""
        parsed = self.system.parser.parse_record(record)
        self.system.stats.records_parsed += 1
        alerts = []
        for session in self.sessionizer.push(parsed):
            alert = self._score(session)
            if alert is not None:
                alerts.append(alert)
        return alerts

    def process_batch(self, records: Iterable[LogRecord]) -> list[ClassifiedAlert]:
        """Feed a micro-batch; return alerts for sessions it closed.

        Equivalent to ``[a for r in records for a in self.process(r)]``
        — identical alerts in identical order — but the whole batch is
        parsed in one amortized :meth:`Parser.parse_batch` call before
        sessionization.
        """
        records = list(records)
        parsed = self.system.parser.parse_batch(records)
        self.system.stats.records_parsed += len(parsed)
        alerts = []
        for event in parsed:
            for session in self.sessionizer.push(event):
                alert = self._score(session)
                if alert is not None:
                    alerts.append(alert)
        return alerts

    def process_stream(
        self, records: Iterable[LogRecord]
    ) -> Iterator[ClassifiedAlert]:
        """Generator form of :meth:`process` + terminal :meth:`flush`."""
        for record in records:
            yield from self.process(record)
        yield from self.flush()

    def flush(self) -> list[ClassifiedAlert]:
        """Close all open sessions and score them (stream shutdown)."""
        alerts = []
        for session in self.sessionizer.flush():
            alert = self._score(session)
            if alert is not None:
                alerts.append(alert)
        return alerts
