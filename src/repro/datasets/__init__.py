"""Synthetic, ground-truthed log datasets.

The paper evaluates on production streams (3DS OUTSCALE) and the
standard public corpora used by the cited detectors (HDFS, BGL).
Neither is available offline, so this subpackage generates synthetic
equivalents that preserve the structural properties the experiments
depend on (see DESIGN.md, substitutions table):

* :mod:`repro.datasets.hdfs` — block-session structured stream with the
  classic HDFS template set and session-level anomalies.
* :mod:`repro.datasets.bgl` — supercomputer-style stream labelled per
  record, for time-window detection.
* :mod:`repro.datasets.cloud` — a multi-source cloud platform (API,
  network, storage sources) with cross-source anomalies, the setting
  that motivates MoniLog.

Every generator returns a :class:`LabeledDataset` carrying records,
session ground truth, and the exact template library used, so both
parsing metrics (Eq. 1 needs token-level truth) and detection metrics
(P/R/F1 need sequence-level truth) can be computed.
"""

from repro.datasets.common import LabeledDataset, SessionTruth, train_test_split
from repro.datasets.hdfs import HdfsDataset, generate_hdfs
from repro.datasets.bgl import BglDataset, generate_bgl
from repro.datasets.cloud import CloudPlatformDataset, generate_cloud_platform

__all__ = [
    "BglDataset",
    "CloudPlatformDataset",
    "HdfsDataset",
    "LabeledDataset",
    "SessionTruth",
    "generate_bgl",
    "generate_cloud_platform",
    "generate_hdfs",
    "train_test_split",
]
