"""Synthetic BGL-like dataset.

BGL (Blue Gene/L supercomputer logs) is the second standard corpus in
the log anomaly detection literature.  Unlike HDFS it has *no* session
ids: records are labelled individually (alert vs non-alert) and
detectors window the stream by time or by count.  This generator
reproduces that structure: a per-node hardware/kernel template set,
per-record ground-truth labels, and bursty alert episodes (real alerts
cluster in time — a property sliding-window detectors rely on).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.common import LabeledDataset, SessionTruth
from repro.logs.record import LogRecord, Severity
from repro.logs.sources import TemplateLibrary


@dataclass
class BglDataset(LabeledDataset):
    """Alias carrying the dataset name for type clarity."""


def _node(rng: random.Random) -> str:
    return (
        f"R{rng.randint(0, 63):02d}-M{rng.randint(0, 1)}"
        f"-N{rng.randint(0, 15):x}-C:J{rng.randint(0, 17):02d}-U{rng.randint(0, 3):02d}"
    )


def _hexaddr(rng: random.Random) -> str:
    return f"0x{rng.randint(0, 2**32 - 1):08x}"


def _count(rng: random.Random) -> str:
    return str(rng.randint(1, 64))


def _build_library() -> tuple[TemplateLibrary, dict[str, int]]:
    library = TemplateLibrary()
    ids: dict[str, int] = {}

    def add(name: str, template: str, samplers=(), severity=Severity.INFO) -> None:
        ids[name] = library.add(template, samplers, severity).template_id

    # Normal operational chatter.
    add("boot", "ciod: Node <*> booted successfully", (_node,))
    add(
        "cache",
        "instruction cache parity error corrected on <*>",
        (_node,),
        Severity.WARNING,
    )
    add(
        "generating",
        "generating core file <*> on node <*>",
        (_count, _node),
    )
    add(
        "job_start",
        "ciod: Job <*> started on <*> processors",
        (_count, _count),
    )
    add(
        "job_end",
        "ciod: Job <*> terminated normally exit status <*>",
        (_count, lambda rng: "0"),
    )
    add(
        "sync",
        "mmcs_server: node <*> synchronized at barrier <*>",
        (_node, _count),
    )
    add(
        "heartbeat",
        "idoproxy: heartbeat from <*> received",
        (_node,),
    )
    add(
        "temp",
        "monitor: temperature reading <*> on <*> within range",
        (_count, _node),
    )
    # Alert statements (per-record anomalies).
    add(
        "kernel_panic",
        "KERNEL FATAL kernel panic on <*> at address <*>",
        (_node, _hexaddr),
        Severity.CRITICAL,
    )
    add(
        "ddr_failure",
        "KERNEL FATAL data storage interrupt on <*> ddr error at <*>",
        (_node, _hexaddr),
        Severity.CRITICAL,
    )
    add(
        "torus_error",
        "KERNEL ERROR torus sender <*> retransmission error count <*>",
        (_node, _count),
        Severity.ERROR,
    )
    add(
        "link_failure",
        "MMCS ERROR link card <*> failed power status <*>",
        (_node, _hexaddr),
        Severity.ERROR,
    )
    return library, ids


_NORMAL = (
    "boot", "cache", "generating", "job_start", "job_end",
    "sync", "heartbeat", "temp",
)
_NORMAL_WEIGHTS = (1, 2, 1, 3, 3, 4, 6, 4)
_ALERTS = ("kernel_panic", "ddr_failure", "torus_error", "link_failure")


def generate_bgl(
    *,
    records: int = 20_000,
    alert_episodes: int = 12,
    episode_length: tuple[int, int] = (20, 60),
    rate: float = 25.0,
    seed: int = 0,
) -> BglDataset:
    """Generate a synthetic BGL-like stream with bursty alert episodes.

    Args:
        records: total number of log records.
        alert_episodes: number of alert bursts scattered in the stream.
        episode_length: (min, max) records per burst; inside a burst,
            roughly half the records are alert statements.
        rate: average records per second.
        seed: RNG seed.

    Session ground truth: since BGL has no sessions, each record's
    ``session_id`` is set to a fixed-size window bucket (``win-N``,
    100 records per bucket) and a bucket is anomalous if it contains at
    least one alert record — the standard BGL evaluation protocol.
    """
    if episode_length[0] > episode_length[1]:
        raise ValueError("episode_length must be (min, max) with min <= max")
    library, ids = _build_library()
    rng = random.Random(seed)

    # Choose episode start offsets spread over the stream.
    episode_starts = sorted(
        rng.sample(range(0, max(1, records - episode_length[1])), k=min(alert_episodes, records))
    )
    episode_plan: dict[int, int] = {}
    for start in episode_starts:
        episode_plan[start] = rng.randint(*episode_length)

    bucket_size = 100
    out: list[LogRecord] = []
    truths: dict[str, SessionTruth] = {}
    clock = 0.0
    in_episode = 0

    for index in range(records):
        if index in episode_plan:
            in_episode = episode_plan[index]
        alert = in_episode > 0 and rng.random() < 0.5
        if in_episode > 0:
            in_episode -= 1
        if alert:
            name = rng.choice(_ALERTS)
        else:
            name = rng.choices(_NORMAL, weights=_NORMAL_WEIGHTS, k=1)[0]
        template = library[ids[name]]
        message, _ = template.instantiate(rng)
        clock += rng.expovariate(rate)
        bucket = f"win-{index // bucket_size:05d}"
        record = LogRecord(
            timestamp=clock,
            source="bgl",
            severity=template.severity,
            message=message,
            session_id=bucket,
            sequence=index,
            labels=frozenset({"anomaly"}) if alert else frozenset(),
        )
        out.append(record)
        existing = truths.get(bucket)
        if existing is None or (alert and not existing.anomalous):
            truths[bucket] = SessionTruth(
                session_id=bucket,
                anomalous=alert or (existing.anomalous if existing else False),
                kind="alert" if alert else (existing.kind if existing else None),
            )

    return BglDataset(name="bgl", records=out, library=library, sessions=truths)
