"""Synthetic multi-source cloud platform dataset.

This is the setting that motivates MoniLog (paper §I–II): one system
fed by many log sources, where "certain patterns within storage logs
are anomalous only if certain actions are logged by network logs at the
same time".  The generator models three sources of a small IaaS
platform —

* ``api`` — the request front-end (optionally emits JSON-suffixed
  messages, the §IV observation behind experiment X7),
* ``network`` — port/link management,
* ``storage`` — volume attach/detach and replication,

— and emits *request sessions* that span sources.  Anomaly kinds:

* ``api_failure``      — sequential anomaly inside one source,
* ``cross_source``     — storage retry burst coinciding with network
  link flaps; each half also occurs alone in normal traffic, so only a
  multi-source detector scope can separate it (experiment X3),
* ``quantitative``     — normal flow with an absurd latency value.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from repro.datasets.common import LabeledDataset, SessionTruth
from repro.logs.record import LogRecord, Severity
from repro.logs.sources import TemplateLibrary


#: Normal API latency in milliseconds; quantitative anomalies exceed
#: this by 100x or more.
NORMAL_LATENCY_MS = (1, 500)


@dataclass
class CloudPlatformDataset(LabeledDataset):
    """Alias carrying the dataset name for type clarity."""


def _vm(rng: random.Random) -> str:
    return f"vm-{rng.randint(10**6, 10**7 - 1):x}"


def _volume(rng: random.Random) -> str:
    return f"vol-{rng.randint(10**6, 10**7 - 1):x}"


def _port(rng: random.Random) -> str:
    return str(rng.randint(1024, 65535))


def _host(rng: random.Random) -> str:
    return f"host-{rng.randint(1, 48):02d}"


def _ip(rng: random.Random) -> str:
    return f"10.{rng.randint(0, 255)}.{rng.randint(0, 255)}.{rng.randint(1, 254)}"


def _latency(rng: random.Random) -> str:
    return str(rng.randint(*NORMAL_LATENCY_MS))


def _user(rng: random.Random) -> str:
    return f"user{rng.randint(1, 500)}"


def _build_library() -> tuple[TemplateLibrary, dict[str, tuple[str, int]]]:
    """Register templates; map name → (source, template id)."""
    library = TemplateLibrary()
    ids: dict[str, tuple[str, int]] = {}

    def add(name: str, source: str, template: str, samplers=(),
            severity=Severity.INFO) -> None:
        ids[name] = (source, library.add(template, samplers, severity).template_id)

    # API front-end.
    add("api_recv", "api", "Received request RunInstances for <*> from <*>",
        (_user, _ip))
    add("api_sched", "api", "Scheduler placed instance <*> on <*>",
        (_vm, _host))
    add("api_ok", "api", "Request completed status 200 in <*> ms", (_latency,))
    add("api_term_recv", "api", "Received request TerminateInstances for <*> from <*>",
        (_user, _ip))
    add("api_term_ok", "api", "Instance <*> terminated status 200 in <*> ms",
        (_vm, _latency), Severity.INFO)
    add("api_err", "api", "Request failed status 500 internal error in <*> ms",
        (_latency,), Severity.ERROR)
    add("api_retry", "api", "Retrying placement for instance <*> attempt <*>",
        (_vm, lambda rng: str(rng.randint(2, 5))), Severity.WARNING)
    # Network service.
    add("net_alloc", "network", "Allocated port <*> for instance <*> on <*>",
        (_port, _vm, _host))
    add("net_up", "network", "Link up for instance <*> ip <*>", (_vm, _ip))
    add("net_release", "network", "Released port <*> for instance <*>",
        (_port, _vm))
    add("net_flap", "network", "Link flap detected on <*> port <*>",
        (_host, _port), Severity.WARNING)
    add("net_down", "network", "Link down for instance <*> ip <*>",
        (_vm, _ip), Severity.WARNING)
    # Storage service.
    add("sto_create", "storage", "Creating volume <*> size <*> GiB",
        (_volume, lambda rng: str(rng.randint(8, 512))))
    add("sto_attach", "storage", "Attached volume <*> to instance <*>",
        (_volume, _vm))
    add("sto_detach", "storage", "Detached volume <*> from instance <*>",
        (_volume, _vm))
    add("sto_repl", "storage", "Replication completed for volume <*> to <*>",
        (_volume, _host))
    add("sto_retry", "storage", "Replication retry <*> for volume <*>",
        (lambda rng: str(rng.randint(1, 3)), _volume), Severity.WARNING)
    add("sto_degraded", "storage", "Volume <*> entered degraded state",
        (_volume,), Severity.ERROR)
    return library, ids


# Request flows, as (template name, ...) sequences.  Names map to their
# source via the library ids, so one session naturally spans sources.
_FLOWS_NORMAL: dict[str, tuple[str, ...]] = {
    "run_instance": (
        "api_recv", "api_sched", "net_alloc", "sto_create",
        "sto_attach", "net_up", "api_ok",
    ),
    "terminate_instance": (
        "api_term_recv", "sto_detach", "net_release", "api_term_ok",
    ),
    # Benign background maintenance: a retry or a flap alone is normal.
    "replication_cycle": ("sto_create", "sto_repl", "sto_retry", "sto_repl"),
    "net_maintenance": ("net_flap", "net_up"),
}
_FLOW_WEIGHTS = {"run_instance": 6, "terminate_instance": 4,
                 "replication_cycle": 2, "net_maintenance": 2}

_FLOWS_ANOMALOUS: dict[str, tuple[str, ...]] = {
    # Scheduler melts down: retries then a 500.
    "api_failure": (
        "api_recv", "api_sched", "api_retry", "api_retry",
        "api_retry", "api_err",
    ),
    # The cross-source pattern: storage retries *because* the network is
    # flapping; each half appears alone in normal flows above.
    "cross_source": (
        "sto_retry", "net_flap", "sto_retry", "net_flap",
        "net_down", "sto_retry", "sto_degraded",
    ),
    # Normal run_instance flow — the latency value is inflated instead.
    "quantitative": (
        "api_recv", "api_sched", "net_alloc", "sto_create",
        "sto_attach", "net_up", "api_ok",
    ),
}


def _inflate_latency(message: str, rng: random.Random) -> str:
    """Multiply the latency field far beyond the normal range."""
    tokens = message.split(" ")
    for index, token in enumerate(tokens):
        if token.isdigit() and int(token) <= NORMAL_LATENCY_MS[1]:
            tokens[index] = str(rng.randint(
                NORMAL_LATENCY_MS[1] * 100, NORMAL_LATENCY_MS[1] * 1000))
            break
    return " ".join(tokens)


def generate_cloud_platform(
    *,
    sessions: int = 800,
    anomaly_rate: float = 0.05,
    json_suffix: bool = False,
    seed: int = 0,
) -> CloudPlatformDataset:
    """Generate the multi-source cloud platform corpus.

    Args:
        sessions: number of request sessions.
        anomaly_rate: fraction of anomalous sessions, split evenly
            across the three anomaly kinds.
        json_suffix: when ``True``, ``api`` records carry a trailing
            JSON payload (request id, user, region) — the §IV
            "API-like services" practice that experiment X7 measures.
        seed: RNG seed.
    """
    if not 0.0 <= anomaly_rate <= 1.0:
        raise ValueError(f"anomaly_rate must be in [0, 1], got {anomaly_rate}")
    library, ids = _build_library()
    rng = random.Random(seed)
    records: list[LogRecord] = []
    truths: dict[str, SessionTruth] = {}
    clock = 0.0
    sequence = 0
    normal_names = sorted(_FLOWS_NORMAL)
    normal_weights = [_FLOW_WEIGHTS[name] for name in normal_names]
    anomaly_names = sorted(_FLOWS_ANOMALOUS)

    for index in range(sessions):
        session_id = f"req-{index:06d}"
        anomalous = rng.random() < anomaly_rate
        if anomalous:
            kind = anomaly_names[index % len(anomaly_names)]
            flow = _FLOWS_ANOMALOUS[kind]
        else:
            kind = None
            flow = _FLOWS_NORMAL[
                rng.choices(normal_names, weights=normal_weights, k=1)[0]
            ]
        labels = frozenset({"anomaly"}) if anomalous else frozenset()
        for step in flow:
            source, template_id = ids[step]
            template = library[template_id]
            message, _ = template.instantiate(rng)
            if kind == "quantitative" and step == "api_ok":
                message = _inflate_latency(message, rng)
            if json_suffix and source == "api":
                # Real API payloads vary in keys and length; that token
                # churn is exactly why the paper recommends extracting
                # them before template mining (experiment X7).
                fields: dict[str, object] = {"request_id": session_id}
                if rng.random() < 0.8:
                    fields["user"] = f"user{rng.randint(1, 500)}"
                if rng.random() < 0.6:
                    fields["region"] = rng.choice(
                        ["eu-west-2", "us-east-1", "cloudgouv"]
                    )
                if rng.random() < 0.4:
                    fields["latency_ms"] = rng.randint(1, 500)
                if rng.random() < 0.3:
                    fields["retries"] = rng.randint(0, 3)
                payload = json.dumps(fields, separators=(", ", ": "))
                message = f"{message} {payload}"
            clock += rng.expovariate(40.0)
            records.append(
                LogRecord(
                    timestamp=clock,
                    source=source,
                    severity=template.severity,
                    message=message,
                    session_id=session_id,
                    sequence=sequence,
                    labels=labels,
                )
            )
            sequence += 1
        truths[session_id] = SessionTruth(
            session_id=session_id, anomalous=anomalous, kind=kind
        )

    return CloudPlatformDataset(
        name="cloud", records=records, library=library, sessions=truths
    )
