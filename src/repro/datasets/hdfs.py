"""Synthetic HDFS-like dataset.

The public HDFS corpus (Xu et al., SOSP'09) is the standard benchmark
for DeepLog / LogAnomaly / LogRobust: ~11 M lines grouped into block
sessions by ``blk_`` id, with ~2.9 % of blocks labelled anomalous.  No
network access is available here, so this generator reproduces the
corpus *structure*: the well-known block-lifecycle template set, block
sessions as the unit of labelling, rare session anomalies of both
kinds the paper distinguishes —

* **sequential** anomalies: sessions whose template sequence deviates
  from the write/replicate/commit flow (exceptions, truncated
  replication, redundant delete);
* **quantitative** anomalies: sessions that follow the normal flow but
  carry wildly abnormal variable values (e.g. a transfer size far
  outside the seen range — Table I's L3 case).

Ground truth (session labels + template library) is attached so every
metric in :mod:`repro.metrics` can be computed exactly.

Templates use whole-token wildcards: a variable always occupies a full
space-delimited token, matching the paper's token definition used by
the Eq. 1 metric.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.common import LabeledDataset, SessionTruth
from repro.logs.record import LogRecord, Severity
from repro.logs.sources import TemplateLibrary


#: Normal transfer sizes are drawn from this range; quantitative
#: anomalies multiply the upper bound by up to ``QUANT_FACTOR``.
NORMAL_BYTES = (512, 67_108_864)
QUANT_FACTOR = 1_000


@dataclass
class HdfsDataset(LabeledDataset):
    """Alias carrying the dataset name for type clarity."""


def _block_id(rng: random.Random) -> str:
    return f"blk_{rng.randint(10**9, 10**10 - 1)}"


def _slash_ip(rng: random.Random) -> str:
    return f"/10.{rng.randint(0, 255)}.{rng.randint(0, 255)}.{rng.randint(1, 254)}"


def _part_path(rng: random.Random) -> str:
    return f"/user/job/part-{rng.randint(0, 9999)}"


def _size(rng: random.Random) -> str:
    return str(rng.randint(*NORMAL_BYTES))


def _responder(rng: random.Random) -> str:
    return str(rng.randint(0, 2))


def _build_library() -> tuple[TemplateLibrary, dict[str, int]]:
    """Register the HDFS block-lifecycle template set.

    Returns the library plus a name → template id map used by the flow
    definitions below.
    """
    library = TemplateLibrary()
    ids: dict[str, int] = {}

    def add(name: str, template: str, samplers=(), severity=Severity.INFO) -> None:
        ids[name] = library.add(template, samplers, severity).template_id

    add(
        "allocate",
        "BLOCK* NameSystem.allocateBlock: <*> <*>",
        (_part_path, _block_id),
    )
    add(
        "receiving",
        "Receiving block <*> src: <*> dest: <*>",
        (_block_id, _slash_ip, _slash_ip),
    )
    add(
        "received",
        "Received block <*> of size <*> from <*>",
        (_block_id, _size, _slash_ip),
    )
    add(
        "responder_term",
        "PacketResponder <*> for block <*> terminating",
        (_responder, _block_id),
    )
    add(
        "stored",
        "BLOCK* NameSystem.addStoredBlock: blockMap updated: <*> is added to <*> size <*>",
        (_slash_ip, _block_id, _size),
    )
    add("verify", "Verification succeeded for <*>", (_block_id,))
    add("serving", "Served block <*> to <*>", (_block_id, _slash_ip))
    add(
        "delete",
        "BLOCK* NameSystem.delete: <*> is added to invalidSet of <*>",
        (_block_id, _slash_ip),
    )
    # Anomalous statements (sequential anomalies use these).
    add(
        "write_exception",
        "writeBlock <*> received exception java.io.IOException: Connection reset by peer",
        (_block_id,),
        Severity.ERROR,
    )
    add(
        "receive_exception",
        "Exception in receiveBlock for block <*> java.io.EOFException",
        (_block_id,),
        Severity.ERROR,
    )
    add(
        "responder_exception",
        "PacketResponder <*> <*> Exception java.io.InterruptedIOException",
        (_block_id, _responder),
        Severity.ERROR,
    )
    add(
        "redundant_request",
        "Redundant addStoredBlock request received for <*> on <*> size <*>",
        (_block_id, _slash_ip, _size),
        Severity.WARNING,
    )
    add(
        "failed_transfer",
        "Failed to transfer <*> to <*> got java.net.SocketTimeoutException",
        (_block_id, _slash_ip),
        Severity.ERROR,
    )
    return library, ids


# Flow definitions: sequences of template names.  Each session plays one
# flow; replication steps repeat three times as HDFS writes 3 replicas.
_NORMAL_FLOW = (
    "allocate",
    "receiving", "receiving", "receiving",
    "received", "received", "received",
    "responder_term", "responder_term", "responder_term",
    "stored", "stored", "stored",
)
_NORMAL_READ_SUFFIX = ("verify", "serving")

_SEQUENTIAL_ANOMALIES: dict[str, tuple[str, ...]] = {
    "write_failure": (
        "allocate",
        "receiving", "receiving",
        "write_exception",
        "failed_transfer",
    ),
    "receive_failure": (
        "allocate",
        "receiving", "receiving", "receiving",
        "receive_exception",
        "responder_exception",
        "delete",
    ),
    "truncated_replication": (
        "allocate",
        "receiving",
        "received",
        "responder_term",
        "stored",
    ),
    "redundant_storage": (
        "allocate",
        "receiving", "receiving", "receiving",
        "received", "received", "received",
        "responder_term", "responder_term", "responder_term",
        "stored", "stored", "stored",
        "redundant_request", "redundant_request",
    ),
}


def _pin_block_id(message: str, block_id: str) -> str:
    """Replace any sampled ``blk_...`` token with the session's id.

    Every statement about a block must reference the same block id, and
    the session id doubles as that block id.
    """
    tokens = message.split(" ")
    for index, token in enumerate(tokens):
        if token.startswith("blk_"):
            tokens[index] = block_id
    return " ".join(tokens)


def _inflate_size(message: str, rng: random.Random) -> str:
    """Blow up the size field to create a quantitative anomaly (L3)."""
    tokens = message.split(" ")
    for index in range(len(tokens) - 1, -1, -1):
        if tokens[index].isdigit() and int(tokens[index]) <= NORMAL_BYTES[1]:
            tokens[index] = str(
                rng.randint(NORMAL_BYTES[1] * 10, NORMAL_BYTES[1] * QUANT_FACTOR)
            )
            break
    return " ".join(tokens)


def _emit_flow(
    *,
    flow: tuple[str, ...],
    library: TemplateLibrary,
    ids: dict[str, int],
    session_id: str,
    clock: float,
    rng: random.Random,
    sequence_start: int,
    quantitative: bool,
    anomalous: bool,
) -> tuple[list[LogRecord], float, int]:
    """Instantiate one flow for one block; returns records, clock, seq."""
    records: list[LogRecord] = []
    sequence = sequence_start
    labels = frozenset({"anomaly"}) if anomalous else frozenset()
    for step in flow:
        template = library[ids[step]]
        message, _ = template.instantiate(rng)
        message = _pin_block_id(message, session_id)
        if quantitative and step in ("received", "stored"):
            message = _inflate_size(message, rng)
        clock += rng.expovariate(50.0)
        records.append(
            LogRecord(
                timestamp=clock,
                source="hdfs",
                severity=template.severity,
                message=message,
                session_id=session_id,
                sequence=sequence,
                labels=labels,
            )
        )
        sequence += 1
    return records, clock, sequence


def generate_hdfs(
    *,
    sessions: int = 1000,
    anomaly_rate: float = 0.03,
    quantitative_share: float = 0.25,
    read_probability: float = 0.6,
    seed: int = 0,
) -> HdfsDataset:
    """Generate a synthetic HDFS-like dataset.

    Args:
        sessions: number of block sessions.
        anomaly_rate: fraction of anomalous sessions (public corpus:
            ~2.9 %).
        quantitative_share: among anomalous sessions, the fraction that
            are quantitative (normal flow, abnormal size values) rather
            than sequential.
        read_probability: chance a normal session appends the
            verify/serve read suffix — this yields *two* normal flow
            variants, so detectors must learn more than one pattern.
        seed: RNG seed; generation is fully deterministic.
    """
    if not 0.0 <= anomaly_rate <= 1.0:
        raise ValueError(f"anomaly_rate must be in [0, 1], got {anomaly_rate}")
    library, ids = _build_library()
    rng = random.Random(seed)
    records: list[LogRecord] = []
    truths: dict[str, SessionTruth] = {}
    clock = 0.0
    sequence = 0

    for _ in range(sessions):
        session_id = _block_id(rng)
        while session_id in truths:
            session_id = _block_id(rng)
        anomalous = rng.random() < anomaly_rate
        quantitative = anomalous and rng.random() < quantitative_share
        if not anomalous:
            flow = _NORMAL_FLOW
            if rng.random() < read_probability:
                flow = flow + _NORMAL_READ_SUFFIX
            kind = None
        elif quantitative:
            flow = _NORMAL_FLOW
            kind = "quantitative"
        else:
            kind = rng.choice(sorted(_SEQUENTIAL_ANOMALIES))
            flow = _SEQUENTIAL_ANOMALIES[kind]
        session_records, clock, sequence = _emit_flow(
            flow=flow,
            library=library,
            ids=ids,
            session_id=session_id,
            clock=clock,
            rng=rng,
            sequence_start=sequence,
            quantitative=quantitative,
            anomalous=anomalous,
        )
        records.extend(session_records)
        truths[session_id] = SessionTruth(
            session_id=session_id, anomalous=anomalous, kind=kind
        )

    return HdfsDataset(
        name="hdfs", records=records, library=library, sessions=truths
    )
