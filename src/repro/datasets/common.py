"""Shared dataset machinery: labels, splits, and session ground truth."""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.logs.record import LogRecord
from repro.logs.sources import TemplateLibrary


@dataclass(frozen=True)
class SessionTruth:
    """Ground truth for one session (e.g. one HDFS block).

    ``anomalous`` is the session-level label the detection metrics use;
    ``kind`` describes the anomaly family (``None`` for normal
    sessions) so experiments can break results down.
    """

    session_id: str
    anomalous: bool
    kind: str | None = None


@dataclass
class LabeledDataset:
    """A generated corpus with full parsing and detection ground truth.

    Attributes:
        name: dataset identifier (``"hdfs"``, ``"bgl"``, ``"cloud"``).
        records: all records in delivery order.
        library: the exact template library used for generation —
            supervised parsing metrics look templates up here.
        sessions: session-level ground truth, keyed by session id.
    """

    name: str
    records: list[LogRecord]
    library: TemplateLibrary
    sessions: dict[str, SessionTruth] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def anomaly_rate(self) -> float:
        """Fraction of sessions labelled anomalous (0 if no sessions)."""
        if not self.sessions:
            return 0.0
        anomalous = sum(1 for truth in self.sessions.values() if truth.anomalous)
        return anomalous / len(self.sessions)

    def session_records(self) -> dict[str, list[LogRecord]]:
        """Group records by session id, preserving delivery order.

        Records without a session id are grouped under ``""``.
        """
        grouped: dict[str, list[LogRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.session_id or "", []).append(record)
        return grouped

    def normal_sessions(self) -> list[str]:
        return [
            session_id
            for session_id, truth in self.sessions.items()
            if not truth.anomalous
        ]

    def anomalous_sessions(self) -> list[str]:
        return [
            session_id
            for session_id, truth in self.sessions.items()
            if truth.anomalous
        ]

    def subset(self, session_ids: Iterable[str]) -> "LabeledDataset":
        """Project the dataset onto a set of sessions."""
        wanted = set(session_ids)
        return LabeledDataset(
            name=self.name,
            records=[
                record for record in self.records if record.session_id in wanted
            ],
            library=self.library,
            sessions={
                session_id: truth
                for session_id, truth in self.sessions.items()
                if session_id in wanted
            },
        )


def train_test_split(
    dataset: LabeledDataset,
    *,
    train_fraction: float = 0.5,
    anomaly_free_training: bool = True,
    seed: int = 0,
) -> tuple[LabeledDataset, LabeledDataset]:
    """Split a dataset by session into train and test parts.

    With ``anomaly_free_training=True`` (the deployment-realistic regime
    the paper wants to study in experiment X1) the training split
    contains only normal sessions; all anomalous sessions go to test.
    With ``False``, anomalous sessions are split proportionally — the
    LogRobust-style 50/50-capable regime.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    rng = random.Random(seed)
    normal = dataset.normal_sessions()
    anomalous = dataset.anomalous_sessions()
    rng.shuffle(normal)
    rng.shuffle(anomalous)

    train_ids: list[str] = normal[: int(len(normal) * train_fraction)]
    test_ids: list[str] = normal[int(len(normal) * train_fraction):]
    if anomaly_free_training:
        test_ids += anomalous
    else:
        cut = int(len(anomalous) * train_fraction)
        train_ids += anomalous[:cut]
        test_ids += anomalous[cut:]
    return dataset.subset(train_ids), dataset.subset(test_ids)


def records_as_sessions(
    records: Sequence[LogRecord],
) -> dict[str, list[LogRecord]]:
    """Group arbitrary records by session id (order-preserving)."""
    grouped: dict[str, list[LogRecord]] = {}
    for record in records:
        grouped.setdefault(record.session_id or "", []).append(record)
    return grouped
