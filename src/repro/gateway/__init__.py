"""Multi-tenant serving: N tenant pipelines over shared pools.

One :class:`Gateway` multiplexes per-tenant
:class:`~repro.api.pipeline.Pipeline`\\ s — built from the
``[tenants.*]`` tables of a single spec — over one shared executor
pool, one shared metrics registry (``tenant`` label on every family),
and one shared checkpoint store (namespaced per tenant), while keeping
back-pressure, parser/detector state, and alert identity strictly
per-tenant.  ``repro serve --spec gateway.toml`` is the CLI spelling;
see ``docs/gateway.md`` for the isolation model and the wire format of
the tenant-carrying ``framed`` transport.
"""

from repro.gateway.gateway import Gateway, GatewayService, TenantAlert

__all__ = ["Gateway", "GatewayService", "TenantAlert"]
