"""The multi-tenant gateway: N tenant pipelines over shared pools.

:class:`Gateway` takes one :class:`~repro.api.spec.PipelineSpec` whose
``[tenants.*]`` tables declare the tenants, and builds one streaming
:class:`~repro.api.pipeline.Pipeline` per tenant from
:meth:`~repro.api.spec.PipelineSpec.tenant_spec`.  What is shared and
what is isolated is the whole point:

**Shared** (cost amortized across tenants):

* one executor pool — every tenant's shard work runs on the same
  :class:`~repro.core.executors.ShardExecutor`, resolved once from the
  base spec (worker threads/processes are the expensive resource);
* one :class:`~repro.telemetry.metrics.MetricsRegistry` and one
  ``/metrics`` endpoint — each tenant's telemetry declares through a
  :class:`~repro.telemetry.metrics.ScopedRegistry` view, so every
  ``monilog_*`` family carries a ``tenant`` label;
* one checkpoint file — per-tenant
  :meth:`~repro.ingest.checkpoint.CheckpointStore.namespaced` views
  keep offsets disjoint even when tenants name their sources alike.

**Isolated** (one tenant cannot hurt another):

* parser/detector state — each tenant has its own pipeline; templates
  and models never mix;
* back-pressure — each tenant's
  :class:`~repro.ingest.service.IngestService` owns its own
  :class:`~repro.ingest.backpressure.CreditGate`, so a flooding tenant
  exhausts *its* credit budget and stalls *its* readers only;
* alert identity — alerts are produced by the tenant's own pipeline
  (byte-identical to a standalone run of the same spec) and delivered
  tagged as :class:`TenantAlert`.

Serving is :meth:`Gateway.serve` → :class:`GatewayService`, the
multiplexed analogue of ``Pipeline.serve()``::

    gateway = Gateway.from_spec("gateway.toml")
    gateway.fit({"acme": acme_history, "globex": globex_history})
    service = gateway.serve(metrics_port=9100)
    alerts = asyncio.run(service.run())   # list[TenantAlert]
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass
from os import PathLike

from repro.api.pipeline import Pipeline
from repro.api.registry import register_component
from repro.api.spec import PipelineSpec
from repro.core.reports import ClassifiedAlert
from repro.ingest.checkpoint import CheckpointStore, NamespacedCheckpoints
from repro.ingest.service import IngestService, IngestStats
from repro.logs.record import LogRecord
from repro.telemetry.metrics import MetricsRegistry, ScopedRegistry
from repro.telemetry.server import MetricsServer
from repro.telemetry.profiling import SamplingProfiler
from repro.telemetry.tracing import HealthMonitor, Tracer, TraceStore

#: The comment block the shared registry emits at the top of
#: ``/metrics`` — the endpoint documents its own label convention.
_PREAMBLE = (
    "MoniLog multi-tenant gateway exposition.\n"
    "Every monilog_* family carries a 'tenant' label naming the\n"
    "pipeline that produced the sample; select one tenant with\n"
    '{tenant="<name>"} in PromQL, or `repro stats --tenant <name>`.'
)


@dataclass(frozen=True)
class TenantAlert:
    """One classified alert, tagged with the tenant that produced it.

    The ``alert`` is exactly what the tenant's standalone pipeline
    would have produced — the gateway tags, it never rewrites.
    """

    tenant: str
    alert: ClassifiedAlert

    def summary(self) -> str:
        return (
            f"[{self.tenant}] {self.alert.report.summary()} "
            f"pool={self.alert.pool} criticality={self.alert.criticality}"
        )


@register_component("gateway", "standard")
class Gateway:
    """N per-tenant pipelines multiplexed over shared pools.

    Args:
        spec: the gateway spec — a :class:`PipelineSpec` (or dict) with
            a non-empty ``tenants`` table.  Each tenant's effective
            spec is the base spec with its table overriding
            (:meth:`PipelineSpec.tenant_spec`), forced to streaming
            mode; the base spec's top-level fields are the shared
            defaults.
        executor: optional
            :class:`~repro.core.executors.ShardExecutor` instance (or
            registry name) overriding ``spec.executor`` — every tenant
            pipeline runs on this one pool.

    Telemetry is on by default: the gateway exists to watch tenants
    side by side, so each pipeline gets a ``tenant``-scoped view of the
    shared registry unless its ``[telemetry]`` table says
    ``enabled = false``.  Per-tenant ``metrics_port`` values are
    ignored — the gateway serves one endpoint over the shared registry
    (:meth:`start_metrics_server` / ``serve(metrics_port=...)``).
    """

    def __init__(self, spec: PipelineSpec | dict | None = None, *,
                 executor=None) -> None:
        if isinstance(spec, dict):
            spec = PipelineSpec.from_dict(spec)
        if spec is None or not spec.tenants:
            raise ValueError(
                "a gateway spec needs at least one [tenants.<name>] table; "
                "use Pipeline for a single-tenant spec"
            )
        self.spec = spec
        self.registry = MetricsRegistry()
        self.registry.preamble = _PREAMBLE
        # Resolve the pool once; Pipeline passes instances through, so
        # every tenant shares these workers.  close() is idempotent,
        # which is what lets each pipeline's close() stay oblivious.
        from repro.core.executors import resolve_executor
        self.executor = resolve_executor(
            executor if executor is not None else spec.executor
        )
        self._metrics_server: MetricsServer | None = None
        self._pipelines: dict[str, Pipeline] = {}
        # Tracing and health follow the same shared/isolated split as
        # metrics: one TraceStore ring and one HealthMonitor for the
        # whole gateway, one Tracer per tracing tenant so every span
        # and provenance record carries that tenant's name.  Dark
        # tenants (telemetry ``enabled = false``) stay dark here too.
        specs = {name: self._tenant_pipeline_spec(name)
                 for name in spec.tenants}
        registries = {name: self._tenant_registry(name)
                      for name in spec.tenants}
        configs = {
            name: (specs[name].telemetry_config()
                   if registries[name] is not None else None)
            for name in spec.tenants
        }
        self._health: HealthMonitor | None = (
            HealthMonitor()
            if any(config is not None for config in configs.values())
            else None
        )
        self._trace_store: TraceStore | None = None
        for name, config in configs.items():
            if config is not None and config.tracing:
                self._trace_store = TraceStore(config.trace_buffer)
                break
        # One shared sampler for the whole process — a wall-clock
        # profiler is per-interpreter by nature.  Rate/capacity come
        # from the first profiling tenant's table; the stage-samples
        # family carries (tenant, stage) labels itself, so it attaches
        # to the *base* registry, never a tenant-scoped view (which
        # would stamp a clashing ``tenant`` label on every family).
        self._profiler: SamplingProfiler | None = None
        for name, config in configs.items():
            if config is not None and config.profile:
                self._profiler = SamplingProfiler(
                    hz=config.profile_hz,
                    max_stacks=config.profile_stacks,
                )
                break
        if self._profiler is not None:
            self._profiler.attach(self.registry)
            self._profiler.start()
        for name in spec.tenants:
            config = configs[name]
            tracer = None
            if (config is not None and config.tracing
                    and self._trace_store is not None):
                tracer = Tracer(
                    self._trace_store,
                    sample_rate=config.trace_sample_rate,
                    tenant=name,
                )
            self._pipelines[name] = Pipeline(
                specs[name],
                executor=self.executor,
                metrics_registry=registries[name],
                tracer=tracer,
                health=self._health,
                probe_scope=f"{name}.",
                profiler=(self._profiler
                          if config is not None and config.profile
                          else None),
            )

    def _tenant_pipeline_spec(self, name: str) -> PipelineSpec:
        """The spec a tenant's pipeline is built from.

        Streaming is forced (the gateway serves live streams), and a
        per-tenant ``metrics_port`` is stripped — one shared endpoint,
        not N auto-started servers.
        """
        tenant_spec = self.spec.tenant_spec(name).replace(streaming=True)
        if tenant_spec.telemetry.get("metrics_port") is not None:
            telemetry = {key: value
                         for key, value in tenant_spec.telemetry.items()
                         if key != "metrics_port"}
            tenant_spec = tenant_spec.replace(telemetry=telemetry)
        return tenant_spec

    def _tenant_registry(self, name: str) -> ScopedRegistry | None:
        """The tenant's scoped view, or None when its table opts out."""
        tenant_spec = self.spec.tenant_spec(name)
        if tenant_spec.telemetry and tenant_spec.telemetry_config() is None:
            return None  # enabled = false: this tenant runs dark
        return ScopedRegistry(self.registry, tenant=name)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: "PipelineSpec | dict | str | PathLike",
                  **overrides) -> "Gateway":
        """Build from a spec object, dict, or ``.toml``/``.json`` path."""
        if isinstance(spec, (str, PathLike)):
            spec = PipelineSpec.from_file(spec)
        elif isinstance(spec, dict):
            spec = PipelineSpec.from_dict(spec)
        return cls(spec, **overrides)

    # -- introspection -----------------------------------------------------------

    @property
    def tenants(self) -> list[str]:
        """Tenant names, in declaration order."""
        return list(self._pipelines)

    def pipeline(self, tenant: str) -> Pipeline:
        """One tenant's pipeline (KeyError names the declared set)."""
        try:
            return self._pipelines[tenant]
        except KeyError:
            raise KeyError(
                f"unknown tenant {tenant!r}; declared: {self.tenants}"
            ) from None

    # -- lifecycle: fit ----------------------------------------------------------

    def fit(
        self,
        histories: Mapping[str, Iterable[LogRecord]] | Iterable[LogRecord],
    ) -> "Gateway":
        """Fit every tenant's detector on its historical stream.

        ``histories`` is either a mapping ``tenant -> records`` (every
        declared tenant must be covered, unknown names are an error) or
        one iterable of records shared by all tenants (a common
        baseline corpus) — each tenant still fits its *own* parser and
        detector state on it.
        """
        if isinstance(histories, Mapping):
            unknown = sorted(set(histories) - set(self._pipelines))
            missing = sorted(set(self._pipelines) - set(histories))
            if unknown or missing:
                problems = []
                if unknown:
                    problems.append(f"unknown tenants {unknown}")
                if missing:
                    problems.append(f"missing histories for {missing}")
                raise ValueError(
                    f"fit() histories must cover the declared tenants "
                    f"{self.tenants} exactly: " + "; ".join(problems)
                )
            for name, records in histories.items():
                self._pipelines[name].fit(records)
            return self
        shared = list(histories)
        for pipeline in self._pipelines.values():
            pipeline.fit(shared)
        return self

    # -- lifecycle: offline processing -------------------------------------------

    def process(
        self, records: Mapping[str, Iterable[LogRecord]]
    ) -> list[TenantAlert]:
        """Score finite per-tenant batches; return tagged alerts.

        Each tenant's records run through its own pipeline end to end
        (push + flush, the streaming-offline equivalence path), so the
        alerts are byte-identical to that tenant running standalone.
        Tenants absent from ``records`` are skipped; results follow
        tenant declaration order.
        """
        alerts: list[TenantAlert] = []
        for name in self._pipelines:
            if name not in records:
                continue
            for alert in self.pipeline(name).run_all(records[name]):
                alerts.append(TenantAlert(name, alert))
        unknown = sorted(set(records) - set(self._pipelines))
        if unknown:
            raise KeyError(
                f"unknown tenants {unknown}; declared: {self.tenants}")
        return alerts

    # -- lifecycle: serving ------------------------------------------------------

    def serve(
        self,
        *,
        sources: Mapping[str, Sequence] | None = None,
        checkpoint=None,
        on_alert: Callable[[TenantAlert], None] | None = None,
        metrics_port: int | None = None,
    ) -> "GatewayService":
        """A :class:`GatewayService` over every tenant's live sources.

        Per tenant, this is ``pipeline.serve()``: the tenant spec's
        ``[[sources]]`` build through the registry (or come from the
        ``sources`` mapping, for tests and ``--once`` injection), its
        ingestion knobs configure its own
        :class:`~repro.ingest.service.IngestService` — own credit
        gate, own merge, own batcher.  ``checkpoint`` (a path, a
        :class:`~repro.ingest.checkpoint.CheckpointStore`, default the
        base spec's ``checkpoint``) is shared through per-tenant
        namespaced views; a tenant overriding ``checkpoint`` in its
        table gets its own store.  ``metrics_port`` starts the one
        shared endpoint.  ``on_alert`` sees every
        :class:`TenantAlert`, in delivery order.
        """
        if metrics_port is not None:
            self.start_metrics_server(metrics_port)
        base_store = self._coerce_store(
            checkpoint if checkpoint is not None else self.spec.checkpoint)
        service = GatewayService(self, on_alert=on_alert)
        ingest: dict[str, IngestService] = {}
        for name, pipeline in self._pipelines.items():
            tenant_sources = (sources.get(name)
                              if sources is not None else None)
            if tenant_sources is None and not pipeline.spec.sources:
                raise ValueError(
                    f"tenant {name!r} declares no [[sources]]; every "
                    "served tenant needs at least one live source"
                )
            store = self._tenant_store(name, pipeline.spec, base_store)

            def deliver(alert: ClassifiedAlert, tenant: str = name) -> None:
                service._deliver(tenant, alert)

            ingest[name] = pipeline.serve(
                sources=tenant_sources,
                checkpoint=store,
                on_alert=deliver,
            )
        service._attach(ingest)
        return service

    @staticmethod
    def _coerce_store(checkpoint) -> CheckpointStore | None:
        if checkpoint is None:
            return None
        if isinstance(checkpoint, (str, PathLike)):
            return CheckpointStore(checkpoint)
        return checkpoint

    def _tenant_store(
        self, name: str, tenant_spec: PipelineSpec,
        base_store: CheckpointStore | None,
    ) -> NamespacedCheckpoints | None:
        """The tenant's checkpoint view: shared store, disjoint keys.

        A tenant overriding ``checkpoint`` in its table gets its own
        store at that path; everyone else shares the base store.  The
        namespace applies either way, so two tenants tailing sources
        with the same name never collide on a key.
        """
        store = base_store
        if (tenant_spec.checkpoint is not None
                and tenant_spec.checkpoint != self.spec.checkpoint):
            store = CheckpointStore(tenant_spec.checkpoint)
        if store is None:
            return None
        return store.namespaced(name)

    # -- observability -----------------------------------------------------------

    @property
    def health(self) -> HealthMonitor | None:
        """The shared probe aggregate (``/readyz``), or None when
        every tenant runs dark."""
        return self._health

    @property
    def trace_store(self) -> TraceStore | None:
        """The shared span ring, or None when no tenant traces.

        All tracing tenants share one ring (capacity from the first
        tracing tenant's ``trace_buffer``); each span carries its
        tenant name, so ``/traces?tenant=<name>`` scopes the view.
        """
        return self._trace_store

    @property
    def profiler(self) -> SamplingProfiler | None:
        """The shared sampler, or None when no tenant profiles.

        All profiling tenants share one wall-clock sampler (rate and
        stack capacity from the first profiling tenant's table); every
        sample is stage-attributed with its tenant's name, so the
        ``monilog_profile_stage_samples_total`` family and the
        collapsed stacks separate tenants by label/root frame.
        """
        return self._profiler

    def explain(self, tenant: str, alert_id: int):
        """One tenant's alert provenance (``repro explain``).

        Delegates to that tenant's
        :meth:`~repro.api.pipeline.Pipeline.explain`; KeyError names
        the declared tenants, RuntimeError means the tenant does not
        trace, and an unknown alert id raises KeyError listing the
        ids the tenant's ledger knows.
        """
        return self.pipeline(tenant).explain(alert_id)

    def telemetry(self) -> dict:
        """The shared registry's JSON snapshot (all tenants)."""
        return self.registry.snapshot()

    def metrics_text(self) -> str:
        """The shared Prometheus exposition (all tenants)."""
        return self.registry.render_prometheus()

    @property
    def metrics_server(self) -> MetricsServer | None:
        return self._metrics_server

    def start_metrics_server(self, port: int = 0) -> MetricsServer:
        """Serve the shared registry over HTTP (one endpoint for all
        tenants); a second call returns the running server."""
        if self._metrics_server is None:
            self._metrics_server = MetricsServer(
                self.registry, port,
                trace_store=self._trace_store,
                health=self._health,
                profiler=self._profiler,
            )
        return self._metrics_server

    # -- lifecycle: close --------------------------------------------------------

    def close(self) -> None:
        """Release the shared pool, the sampler, and the endpoint
        (idempotent)."""
        for pipeline in self._pipelines.values():
            pipeline.close()
        self.executor.close()
        if self._profiler is not None:
            self._profiler.stop()
        if self._metrics_server is not None:
            self._metrics_server.close()
            self._metrics_server = None

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class GatewayService:
    """N per-tenant ingestion services running as one serving unit.

    Built by :meth:`Gateway.serve`; one instance supports one
    :meth:`run`.  Each tenant's
    :class:`~repro.ingest.service.IngestService` runs as its own task
    on one event loop: a tenant exhausting its credit budget blocks
    only its own reader coroutines, never the loop.  If any tenant's
    service fails, the whole gateway shuts down cleanly — every other
    tenant drains what it read, checkpoints, and then the original
    failure propagates.
    """

    def __init__(self, gateway: Gateway, *,
                 on_alert: Callable[[TenantAlert], None] | None = None
                 ) -> None:
        self.gateway = gateway
        self.on_alert = on_alert
        self.alerts: list[TenantAlert] = []
        self.services: dict[str, IngestService] = {}
        self._started = False

    def _attach(self, services: dict[str, IngestService]) -> None:
        self.services = services

    def _deliver(self, tenant: str, alert: ClassifiedAlert) -> None:
        tagged = TenantAlert(tenant, alert)
        self.alerts.append(tagged)
        if self.on_alert is not None:
            self.on_alert(tagged)

    # -- control -----------------------------------------------------------------

    def stop(self) -> None:
        """Request a clean shutdown of every tenant (idempotent)."""
        for service in self.services.values():
            service.stop()

    def stats(self) -> dict[str, IngestStats]:
        """Per-tenant front-end snapshots, keyed by tenant name."""
        return {name: service.stats()
                for name, service in self.services.items()}

    def summary(self) -> str:
        """Multi-line per-tenant summary (the ``serve`` epilogue)."""
        blocks = []
        for name, service in self.services.items():
            body = service.stats().summary().replace("\n", "\n  ")
            blocks.append(f"tenant {name}:\n  {body}")
        blocks.append(f"total alerts: {len(self.alerts)}")
        return "\n".join(blocks)

    # -- the run loop ------------------------------------------------------------

    async def run(self) -> list[TenantAlert]:
        """Serve every tenant until all sources end or :meth:`stop`.

        Returns every :class:`TenantAlert`, in delivery order across
        tenants (the same list ``on_alert`` saw entry by entry).
        """
        if self._started:
            raise RuntimeError("GatewayService.run() supports a single run")
        self._started = True
        loop = asyncio.get_running_loop()
        tasks = [
            loop.create_task(service.run(), name=f"monilog-tenant-{name}")
            for name, service in self.services.items()
        ]
        try:
            await asyncio.gather(*tasks)
        except BaseException:
            # One tenant failed (or run() was cancelled): stop the
            # rest, let their lossless-shutdown drains finish, then
            # surface the original failure.
            self.stop()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise
        return self.alerts
