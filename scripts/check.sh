#!/usr/bin/env bash
# One-command gate for builders: the tier-1 test suite (three times:
# serial, with DeprecationWarning-as-error so internal code never
# calls the legacy facade shims, and under threaded shard execution)
# plus seconds-scale smoke runs of the Fig. 1 pipeline bench, the X9
# parallel-shards bench, the X10 async-ingestion bench, the X11
# autoscale-convergence bench, the X12 elastic-resharding bench (with
# a check of its machine-readable BENCH_*.json snapshots), a
# spec-file-driven CLI pipeline run (examples/pipeline.toml), and a
# telemetry-exposition smoke (`repro stats` JSON + a --metrics-port
# Prometheus scrape over real HTTP).
#
#   scripts/check.sh            # full gate
#   scripts/check.sh -k drain   # extra args go to the tier-1 pytest
#
# The tier-1 invocation matches ROADMAP.md exactly; the second run
# exports MONILOG_EXECUTOR=thread (the suite-wide equivalent of the
# CLI's --executor flag) so every default-constructed sharded runtime
# executes its shards on a thread pool — results must not change, and
# a run that deadlocks, races, or diverges here is a concurrency
# regression.  The ingestion tests additionally run as their own
# threaded pass: the async front-end layers an event loop over the
# executor machinery, which is exactly where loop/pool interactions
# would deadlock.  Bench smokes run with MONILOG_BENCH_SMOKE=1
# (shrunken fixtures, see benchmarks/conftest.py) so each finishes in
# seconds while still exercising the full parse → detect → classify
# path, the sharded runtime, the >=1.5x concurrent-shard throughput
# claim, and X10's >=2x concurrent-ingestion claim with byte-identical
# alerts.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: python -m pytest -x -q =="
python -m pytest -x -q "$@"

echo
echo "== tier-1 with DeprecationWarning as error (no internal shim use) =="
# The four legacy facades are deprecated shims over repro.api.Pipeline;
# internal code and tests must construct through the new API (tests
# that cover the shims themselves catch the warning via pytest.warns).
python -m pytest -x -q -W error::DeprecationWarning "$@"

echo
echo "== tier-1 under the threaded executor: MONILOG_EXECUTOR=thread =="
MONILOG_EXECUTOR=thread python -m pytest -x -q "$@"

# The threaded tier-1 pass above already collects every ingestion
# test; re-run them explicitly only when the caller filtered tier-1
# (e.g. `check.sh -k drain`), so the async-over-executor coverage is
# never silently deselected but default runs pay for it once.
if [ "$#" -gt 0 ]; then
    echo
    echo "== ingestion tests under the threaded executor =="
    MONILOG_EXECUTOR=thread python -m pytest -x -q \
        tests/test_ingest_merge.py tests/test_ingest_sources.py \
        tests/test_ingest_service.py tests/test_ingest_failures.py
fi

echo
echo "== smoke: benchmarks/bench_fig1_pipeline.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest benchmarks/bench_fig1_pipeline.py \
    -q -p no:cacheprovider --benchmark-disable

echo
echo "== smoke: benchmarks/bench_x9_parallel_shards.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest benchmarks/bench_x9_parallel_shards.py \
    -q -p no:cacheprovider --benchmark-disable

echo
echo "== smoke: benchmarks/bench_x10_async_ingestion.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest \
    benchmarks/bench_x10_async_ingestion.py \
    -q -p no:cacheprovider --benchmark-disable

echo
echo "== smoke: benchmarks/bench_x11_autoscale.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest \
    benchmarks/bench_x11_autoscale.py \
    -q -p no:cacheprovider --benchmark-disable

echo
echo "== smoke: benchmarks/bench_x12_elastic_resharding.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest \
    benchmarks/bench_x12_elastic_resharding.py \
    -q -p no:cacheprovider --benchmark-disable
# The bench persists machine-readable snapshots next to its printed
# tables (benchmarks/conftest.py `snapshot` fixture); validate that
# the headline numbers survived the round-trip so CI can diff them.
python -c '
import json
with open("benchmarks/results/BENCH_x12_elastic_resharding.json") as fh:
    reshard = json.load(fh)
assert reshard["smoke"] is True, reshard
assert reshard["speedup"] >= 1.5, reshard
with open("benchmarks/results/BENCH_x12_alert_parity.json") as fh:
    parity = json.load(fh)
assert parity["smoke"] is True, parity
speedup, alerts = reshard["speedup"], parity["alerts"]
print(f"x12 snapshots well-formed: speedup {speedup:.2f}x, "
      f"{alerts} byte-identical alerts")'

echo
echo "== smoke: repro pipeline --spec examples/pipeline.toml =="
spec_tmp="$(mktemp -d)"
trap 'rm -rf "$spec_tmp"' EXIT
python -m repro generate --dataset cloud --sessions 60 --anomaly-rate 0.0 \
    --seed 1 --output "$spec_tmp/history.log" > /dev/null
python -m repro generate --dataset cloud --sessions 30 --anomaly-rate 0.1 \
    --seed 2 --output "$spec_tmp/live.log" > /dev/null
python -m repro pipeline --history "$spec_tmp/history.log" \
    --live "$spec_tmp/live.log" --spec examples/pipeline.toml \
    | tail -n 1

echo
echo "== smoke: repro stats (JSON snapshot + Prometheus scrape) =="
# The JSON surface must parse and carry the pipeline counters...
python -m repro stats --history "$spec_tmp/history.log" \
    --live "$spec_tmp/live.log" 2> /dev/null \
    | python -c '
import json, sys
snapshot = json.load(sys.stdin)
metrics = snapshot["metrics"]
assert "monilog_records_parsed_total" in metrics, sorted(metrics)
assert metrics["monilog_parse_seconds"]["values"][0]["count"] > 0
print(f"stats JSON well-formed: {len(metrics)} metric families")'
# ...and --metrics-port --scrape must serve a well-formed Prometheus
# exposition through a real HTTP round-trip (server + urllib client).
python -m repro stats --history "$spec_tmp/history.log" \
    --live "$spec_tmp/live.log" --metrics-port 0 --scrape --autoscale \
    2> /dev/null \
    | python -c '
import sys
text = sys.stdin.read()
assert text.startswith("# HELP "), text[:80]
assert "# TYPE monilog_records_parsed_total counter" in text
assert "monilog_parse_seconds_bucket{le=" in text
assert "monilog_autoscale_ticks_total 1" in text
for line in text.splitlines():
    if line and not line.startswith("#"):
        float(line.rpartition(" ")[2])
print(f"Prometheus exposition well-formed: {len(text.splitlines())} lines")'

echo
echo "check.sh: all gates passed"
