#!/usr/bin/env bash
# One-command gate for builders: the tier-1 test suite (three times:
# serial, with DeprecationWarning-as-error so internal code never
# calls the legacy facade shims, and under threaded shard execution)
# plus seconds-scale smoke runs of the Fig. 1 pipeline bench, the X9
# parallel-shards bench, the X10 async-ingestion bench, the X11
# autoscale-convergence bench, the X12 elastic-resharding bench, the
# X13 multi-tenant-gateway bench, the X14 tracing-overhead bench, the
# X15 semantic-tier bench, the X16 profiling-overhead bench (with a
# schema check of every machine-readable BENCH_*.json snapshot the
# smokes wrote plus the EVAL_semantic_tier.json quality table), the
# perf-trajectory gate (TRAJECTORY.jsonl schema, the perf_diff
# self-test proving the gate fires, then the real latest-vs-median
# diff), a spec-file-driven CLI pipeline run (examples/pipeline.toml)
# and a second one with the semantic-tier `lof` detector, a
# telemetry-exposition smoke (`repro stats` JSON + a --metrics-port
# Prometheus scrape over real HTTP), a profiling smoke (`repro
# profile` JSON hotspots + a collapsed-stack dump), a tracing smoke
# (`repro pipeline --trace` then `repro explain` on the first alert
# id), a /healthz + /readyz probe of a live `repro serve --once`, and
# a framed-TLS `repro serve` round-trip over an ephemeral self-signed
# certificate.
#
#   scripts/check.sh            # full gate
#   scripts/check.sh -k drain   # extra args go to the tier-1 pytest
#
# The tier-1 invocation matches ROADMAP.md exactly; the second run
# exports MONILOG_EXECUTOR=thread (the suite-wide equivalent of the
# CLI's --executor flag) so every default-constructed sharded runtime
# executes its shards on a thread pool — results must not change, and
# a run that deadlocks, races, or diverges here is a concurrency
# regression.  The ingestion tests additionally run as their own
# threaded pass: the async front-end layers an event loop over the
# executor machinery, which is exactly where loop/pool interactions
# would deadlock.  Bench smokes run with MONILOG_BENCH_SMOKE=1
# (shrunken fixtures, see benchmarks/conftest.py) so each finishes in
# seconds while still exercising the full parse → detect → classify
# path, the sharded runtime, the >=1.5x concurrent-shard throughput
# claim, and X10's >=2x concurrent-ingestion claim with byte-identical
# alerts.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: python -m pytest -x -q =="
python -m pytest -x -q "$@"

echo
echo "== tier-1 with DeprecationWarning as error (no internal shim use) =="
# The four legacy facades are deprecated shims over repro.api.Pipeline;
# internal code and tests must construct through the new API (tests
# that cover the shims themselves catch the warning via pytest.warns).
python -m pytest -x -q -W error::DeprecationWarning "$@"

echo
echo "== tier-1 under the threaded executor: MONILOG_EXECUTOR=thread =="
MONILOG_EXECUTOR=thread python -m pytest -x -q "$@"

# The threaded tier-1 pass above already collects every ingestion
# test; re-run them explicitly only when the caller filtered tier-1
# (e.g. `check.sh -k drain`), so the async-over-executor coverage is
# never silently deselected but default runs pay for it once.
if [ "$#" -gt 0 ]; then
    echo
    echo "== ingestion tests under the threaded executor =="
    MONILOG_EXECUTOR=thread python -m pytest -x -q \
        tests/test_ingest_merge.py tests/test_ingest_sources.py \
        tests/test_ingest_service.py tests/test_ingest_failures.py
fi

echo
echo "== smoke: benchmarks/bench_fig1_pipeline.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest benchmarks/bench_fig1_pipeline.py \
    -q -p no:cacheprovider --benchmark-disable

echo
echo "== smoke: benchmarks/bench_x9_parallel_shards.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest benchmarks/bench_x9_parallel_shards.py \
    -q -p no:cacheprovider --benchmark-disable

echo
echo "== smoke: benchmarks/bench_x10_async_ingestion.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest \
    benchmarks/bench_x10_async_ingestion.py \
    -q -p no:cacheprovider --benchmark-disable

echo
echo "== smoke: benchmarks/bench_x11_autoscale.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest \
    benchmarks/bench_x11_autoscale.py \
    -q -p no:cacheprovider --benchmark-disable

echo
echo "== smoke: benchmarks/bench_x12_elastic_resharding.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest \
    benchmarks/bench_x12_elastic_resharding.py \
    -q -p no:cacheprovider --benchmark-disable

echo
echo "== smoke: benchmarks/bench_x13_multitenant_gateway.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest \
    benchmarks/bench_x13_multitenant_gateway.py \
    -q -p no:cacheprovider --benchmark-disable

echo
echo "== smoke: benchmarks/bench_x14_tracing_overhead.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest \
    benchmarks/bench_x14_tracing_overhead.py \
    -q -p no:cacheprovider --benchmark-disable

echo
echo "== smoke: benchmarks/bench_x15_semantic_tier.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest \
    benchmarks/bench_x15_semantic_tier.py \
    -q -p no:cacheprovider --benchmark-disable

echo
echo "== smoke: benchmarks/bench_x16_profiling_overhead.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest \
    benchmarks/bench_x16_profiling_overhead.py \
    -q -p no:cacheprovider --benchmark-disable

# The benches persist machine-readable snapshots next to their printed
# tables (benchmarks/conftest.py `snapshot` fixture); validate every
# BENCH_*.json against the shared schema — a `smoke` bool plus numeric
# headline fields (optionally one level of nested numeric tables) — so
# CI can diff the numbers across runs, then pin the two headline
# claims of the newest subsystems.
python -c '
import glob, json
paths = sorted(glob.glob("benchmarks/results/BENCH_*.json"))
assert paths, "bench smokes wrote no snapshots"
for path in paths:
    with open(path) as fh:
        payload = json.load(fh)
    assert isinstance(payload.get("smoke"), bool), path
    for key, value in payload.items():
        if key == "smoke":
            continue
        if isinstance(value, dict):
            assert all(isinstance(inner, (int, float)) and
                       not isinstance(inner, bool)
                       for inner in value.values()), (path, key)
        else:
            assert isinstance(value, (int, float)) and \
                not isinstance(value, bool), (path, key)
with open("benchmarks/results/BENCH_x12_elastic_resharding.json") as fh:
    assert json.load(fh)["speedup"] >= 1.5
with open("benchmarks/results/BENCH_x13_multitenant_gateway.json") as fh:
    x13 = json.load(fh)
assert x13["noisy_credit_waits"] > 0, x13
ratio = x13["quiet_noisy_ratio"]
assert ratio <= 0.75, x13
with open("benchmarks/results/BENCH_x14_tracing_overhead.json") as fh:
    x14 = json.load(fh)
tratio = x14["throughput_ratio"]
assert tratio >= 0.95, x14
assert x14["explained"] == x14["alerts"] > 0, x14
with open("benchmarks/results/BENCH_x15_semantic_tier.json") as fh:
    x15 = json.load(fh)
assert x15["cache_speedup"] >= 5.0, x15
assert x15["embeds_double"] == x15["embeds_single"] == x15["templates"], x15
# lof scores are threshold-normalized (>= 1.0 means anomalous); the
# pca score is its raw Q-statistic, so pin its verdict, not its scale.
assert x15["lof_planted_score"] >= 1.0, x15
assert x15["pca_planted_anomalous"] == 0, x15
# The quality table rides along as EVAL_semantic_tier.json: per-dataset
# per-detector precision/recall/f1, every value a probability.
with open("benchmarks/results/EVAL_semantic_tier.json") as fh:
    quality = json.load(fh)
assert isinstance(quality.get("smoke"), bool), quality
datasets = quality["datasets"]
assert set(datasets) == {"bgl", "hdfs"}, sorted(datasets)
for dataset, per_detector in datasets.items():
    assert {"lof", "rollingwindow"} <= set(per_detector), (
        dataset, sorted(per_detector))
    for detector, row in per_detector.items():
        assert {"precision", "recall", "f1"} <= set(row), (dataset, detector)
        for metric, value in row.items():
            assert isinstance(value, (int, float)) and 0.0 <= value <= 1.0, \
                (dataset, detector, metric, value)
with open("benchmarks/results/BENCH_x16_profiling_overhead.json") as fh:
    x16 = json.load(fh)
pratio = x16["throughput_ratio"]
attributed = x16["attributed_fraction"]
assert pratio >= 0.95, x16
assert attributed >= 0.8, x16
assert x16["identity_cells"] == 6 and x16["alerts"] > 0, x16
speedup = x15["cache_speedup"]
print(f"{len(paths)} bench snapshots well-formed "
      f"(x13 quiet/noisy drain ratio {ratio:.2f}, "
      f"x14 traced throughput ratio {tratio:.2f}, "
      f"x15 cache speedup {speedup:.1f}x, "
      f"x16 profiled throughput ratio {pratio:.2f} at "
      f"{attributed:.0%} attribution); "
      f"EVAL quality table covers {len(datasets)} datasets x "
      f"{len(next(iter(datasets.values())))} detectors")'

# The bench smokes above appended their headline numbers to the
# perf-trajectory ledger; validate every line against the shared
# schema, prove the regression gate can fire (self-test synthesizes a
# regression in a scratch ledger and demands a non-zero exit), then
# gate the real ledger: the latest entry of each bench against the
# median of its own history, per-metric, within tolerance bands.
echo
echo "== perf trajectory: schema + self-test + regression gate =="
python -c '
from repro.perf.trajectory import load_entries
entries = load_entries("benchmarks/results/TRAJECTORY.jsonl")
assert entries, "the bench smokes appended no trajectory entries"
for entry in entries:  # load_entries schema-checks; assert the shape
    assert isinstance(entry["bench"], str) and entry["bench"]
    assert isinstance(entry["sha"], str)
    assert isinstance(entry["smoke"], bool)
    assert entry["metrics"] and all(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        for value in entry["metrics"].values())
benches = {entry["bench"] for entry in entries}
print(f"TRAJECTORY.jsonl well-formed: {len(entries)} entries, "
      f"{len(benches)} benches")'
python scripts/perf_diff.py --self-test
python scripts/perf_diff.py

echo
echo "== smoke: repro pipeline --spec examples/pipeline.toml =="
spec_tmp="$(mktemp -d)"
trap 'rm -rf "$spec_tmp"' EXIT
python -m repro generate --dataset cloud --sessions 60 --anomaly-rate 0.0 \
    --seed 1 --output "$spec_tmp/history.log" > /dev/null
python -m repro generate --dataset cloud --sessions 30 --anomaly-rate 0.1 \
    --seed 2 --output "$spec_tmp/live.log" > /dev/null
python -m repro pipeline --history "$spec_tmp/history.log" \
    --live "$spec_tmp/live.log" --spec examples/pipeline.toml \
    | tail -n 1

echo
echo "== smoke: repro pipeline --spec with the semantic-tier lof detector =="
# The semantic tier resolves from an ordinary spec like any detector:
# same pipeline, `detector = "lof"` — end-to-end through the CLI.
cat > "$spec_tmp/lof.toml" << 'TOML'
detector = "lof"
session_timeout = 30.0
[detector_options]
k = 3
TOML
python -m repro pipeline --history "$spec_tmp/history.log" \
    --live "$spec_tmp/live.log" --spec "$spec_tmp/lof.toml" \
    | tail -n 1

echo
echo "== smoke: repro stats (JSON snapshot + Prometheus scrape) =="
# The JSON surface must parse and carry the pipeline counters...
python -m repro stats --history "$spec_tmp/history.log" \
    --live "$spec_tmp/live.log" 2> /dev/null \
    | python -c '
import json, sys
snapshot = json.load(sys.stdin)
metrics = snapshot["metrics"]
assert "monilog_records_parsed_total" in metrics, sorted(metrics)
assert metrics["monilog_parse_seconds"]["values"][0]["count"] > 0
print(f"stats JSON well-formed: {len(metrics)} metric families")'
# ...and --metrics-port --scrape must serve a well-formed Prometheus
# exposition through a real HTTP round-trip (server + urllib client).
python -m repro stats --history "$spec_tmp/history.log" \
    --live "$spec_tmp/live.log" --metrics-port 0 --scrape --autoscale \
    2> /dev/null \
    | python -c '
import sys
text = sys.stdin.read()
assert text.startswith("# HELP "), text[:80]
assert "# TYPE monilog_records_parsed_total counter" in text
assert "monilog_parse_seconds_bucket{le=" in text
assert "monilog_autoscale_ticks_total 1" in text
for line in text.splitlines():
    if line and not line.startswith("#"):
        float(line.rpartition(" ")[2])
print(f"Prometheus exposition well-formed: {len(text.splitlines())} lines")'

echo
echo "== smoke: repro profile (stage-attributed hotspots + collapsed dump) =="
# The profiling CLI end to end: force the sampler on at a high rate,
# drain repeatedly so it accumulates samples, and demand the JSON
# profile carries stage-attributed samples plus a well-formed
# collapsed-stack dump (every line "frame;frame;... count").
python -m repro profile --history "$spec_tmp/history.log" \
    --live "$spec_tmp/live.log" --detector keyword --profile-hz 500 \
    --repeat 10 --json --collapsed "$spec_tmp/collapsed.txt" \
    2> /dev/null \
    | python -c '
import json, sys
profile = json.load(sys.stdin)
stats = profile["stats"]
assert stats["samples"] > 0, stats
stages = set()
for key in stats["stage_samples"]:
    tenant, _, stage = key.rpartition("/")
    stages.add(stage)
assert stages & {"parse", "sessionize", "detect", "classify", "fit"}, stats
assert profile["hotspots"], "no hotspot stacks ranked"
samples = stats["samples"]
print(f"profile JSON well-formed: {samples} samples "
      f"across stages {sorted(stages)}")'
python -c '
import sys
lines = open(sys.argv[1]).read().splitlines()
assert lines, "collapsed dump is empty"
for line in lines:
    stack, _, count = line.rpartition(" ")
    assert stack and int(count) > 0, line
print(f"collapsed dump well-formed: {len(lines)} stacks")' \
    "$spec_tmp/collapsed.txt"

echo
echo "== smoke: repro pipeline --trace -> repro explain (alert provenance) =="
# End-to-end causality: trace a run, dump the span + provenance JSON,
# and resolve the first printed alert id back to source offsets and
# template ids through `repro explain` — plus byte-identity of the
# alert lines against the same run untraced.
trace_out="$(python -m repro pipeline --history "$spec_tmp/history.log" \
    --live "$spec_tmp/live.log" --detector keyword \
    --trace --trace-dump "$spec_tmp/trace.json")"
dark_out="$(python -m repro pipeline --history "$spec_tmp/history.log" \
    --live "$spec_tmp/live.log" --detector keyword)"
[ "$(echo "$trace_out" | grep 'pool=')" = "$(echo "$dark_out" | grep 'pool=')" ] \
    || { echo "tracing changed the printed alerts"; exit 1; }
alert_id="$(echo "$trace_out" | grep -o 'report #[0-9]*' | head -n 1 \
    | grep -o '[0-9]*')"
[ -n "$alert_id" ] || { echo "traced run produced no alerts"; exit 1; }
explain_out="$(python -m repro explain "$alert_id" \
    --trace-file "$spec_tmp/trace.json")"
echo "$explain_out" | grep -q "alert #$alert_id" \
    || { echo "explain did not resolve alert #$alert_id"; exit 1; }
echo "$explain_out" | grep -q "source offsets:" \
    || { echo "explain carried no source offsets"; exit 1; }
echo "$explain_out" | grep -q "templates (" \
    || { echo "explain carried no template inventory"; exit 1; }
echo "alert #$alert_id explained to offsets + templates; traced run byte-identical"

echo
echo "== smoke: /healthz + /readyz during repro serve --once =="
# Liveness/readiness over real HTTP while the gateway serves: a plain
# framed-socket emitter holds its connection open a few seconds so the
# serve stays up long enough to probe both endpoints.
python - "$spec_tmp/plainport" << 'PY' &
import asyncio, sys
from repro.ingest import render_framed_record
from repro.logs.record import LogRecord, Severity

portfile = sys.argv[1]
records = []
for session in range(6):
    sid = f"s{session}"
    messages = [f"request {session * 10 + i} handled fine" for i in range(5)]
    if session == 4:
        messages[2:2] = ["backend timeout error detected"] * 3
    for sequence, message in enumerate(messages):
        records.append(LogRecord(
            timestamp=float(session * 100 + sequence), source="shipper",
            severity=Severity.ERROR if "error" in message else Severity.INFO,
            message=message, session_id=sid, sequence=sequence))

async def main():
    served = asyncio.Event()

    async def handle(reader, writer):
        for record in records:
            writer.write(render_framed_record(record, tenant="acme"))
        await writer.drain()
        # Hold the stream open so --once keeps serving while the
        # health probes run, then close to let it drain and exit.
        await asyncio.sleep(3.0)
        writer.close()
        served.set()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    with open(portfile, "w") as handle_:
        handle_.write(str(server.sockets[0].getsockname()[1]))
    try:
        await asyncio.wait_for(served.wait(), timeout=30)
    finally:
        server.close()
        await server.wait_closed()

asyncio.run(main())
PY
health_emitter_pid=$!
for _ in $(seq 1 100); do
    [ -s "$spec_tmp/plainport" ] && break
    sleep 0.1
done
[ -s "$spec_tmp/plainport" ] || { echo "health emitter never bound"; exit 1; }
cat > "$spec_tmp/health.toml" << TOML
detector = "keyword"
session_timeout = 10.0
history = "$spec_tmp/history.log"
[telemetry]
tracing = true
[tenants.acme]
[[tenants.acme.sources]]
type = "socket"
host = "127.0.0.1"
port = $(cat "$spec_tmp/plainport")
framing = "framed"
TOML
python -m repro serve --spec "$spec_tmp/health.toml" --once \
    --metrics-port 0 > "$spec_tmp/serve.out" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q "serving metrics on" "$spec_tmp/serve.out" 2> /dev/null && break
    sleep 0.1
done
metrics_url="$(grep -o 'http://[^/]*' "$spec_tmp/serve.out" | head -n 1)"
[ -n "$metrics_url" ] || { echo "serve never announced its endpoint"; exit 1; }
python - "$metrics_url" << 'PY'
import json, sys, time, urllib.error, urllib.request
url = sys.argv[1]
with urllib.request.urlopen(f"{url}/healthz", timeout=10) as response:
    assert json.load(response)["status"] == "alive"
# Readiness converges once the ingest loop beats and the socket source
# connects; poll until it does (the emitter holds the stream open).
deadline = time.monotonic() + 10.0
body = None
while time.monotonic() < deadline:
    try:
        with urllib.request.urlopen(f"{url}/readyz", timeout=10) as response:
            body = json.load(response)
    except urllib.error.HTTPError as error:
        body = json.load(error)
    if (body["status"] == "ready"
            and any(probe.endswith("ingest") for probe in body["probes"])):
        break
    time.sleep(0.1)
assert body is not None and body["status"] == "ready", body
assert any(probe.endswith("ingest") for probe in body["probes"]), body
print(f"healthz alive, readyz ready ({len(body['probes'])} probes)")
PY
wait "$serve_pid"
wait "$health_emitter_pid"
grep -q "tenant=acme" "$spec_tmp/serve.out" \
    || { echo "no tenant-tagged alert during the health smoke"; exit 1; }
echo "health probes answered during a live serve"

echo
echo "== smoke: repro serve (framed TLS socket -> multi-tenant gateway) =="
# End-to-end secure ingestion: mint an ephemeral self-signed cert,
# stream framed records through a real TLS socket in the background,
# and drain it with `repro serve --once` over a [tenants.*] spec —
# the full tenant-tagged alert path under real ssl.
if command -v openssl > /dev/null 2>&1; then
    openssl req -x509 -newkey rsa:2048 -keyout "$spec_tmp/key.pem" \
        -out "$spec_tmp/cert.pem" -days 1 -nodes -subj "/CN=localhost" \
        -addext "subjectAltName=DNS:localhost,IP:127.0.0.1" \
        > /dev/null 2>&1
    python - "$spec_tmp/cert.pem" "$spec_tmp/key.pem" "$spec_tmp/port" << 'PY' &
import asyncio, ssl, sys
from repro.ingest import render_framed_record
from repro.logs.record import LogRecord, Severity

cert, key, portfile = sys.argv[1:4]
records = []
for session in range(6):
    sid = f"s{session}"
    messages = [f"request {session * 10 + i} handled fine" for i in range(5)]
    if session == 4:
        messages[2:2] = ["backend timeout error detected"] * 3
    for sequence, message in enumerate(messages):
        records.append(LogRecord(
            timestamp=float(session * 100 + sequence), source="shipper",
            severity=Severity.ERROR if "error" in message else Severity.INFO,
            message=message, session_id=sid, sequence=sequence))

async def main():
    served = asyncio.Event()

    async def handle(reader, writer):
        for record in records:
            writer.write(render_framed_record(record, tenant="acme"))
        await writer.drain()
        writer.close()
        served.set()

    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.load_cert_chain(cert, key)
    server = await asyncio.start_server(handle, "127.0.0.1", 0, ssl=context)
    with open(portfile, "w") as handle_:
        handle_.write(str(server.sockets[0].getsockname()[1]))
    try:
        await asyncio.wait_for(served.wait(), timeout=30)
    finally:
        server.close()
        await server.wait_closed()

asyncio.run(main())
PY
    emitter_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$spec_tmp/port" ] && break
        sleep 0.1
    done
    [ -s "$spec_tmp/port" ] || { echo "TLS emitter never bound"; exit 1; }
    cat > "$spec_tmp/gateway.toml" << TOML
detector = "keyword"
session_timeout = 10.0
history = "$spec_tmp/history.log"
[tenants.acme]
[[tenants.acme.sources]]
type = "socket"
host = "127.0.0.1"
port = $(cat "$spec_tmp/port")
framing = "framed"
tls = true
tls_cafile = "$spec_tmp/cert.pem"
TOML
    serve_out="$(python -m repro serve --spec "$spec_tmp/gateway.toml" --once)"
    wait "$emitter_pid"
    echo "$serve_out" | grep -q "serving tenants: acme" \
        || { echo "serve never announced its tenant"; exit 1; }
    echo "$serve_out" | grep -q "tenant=acme" \
        || { echo "no tenant-tagged alert over framed TLS"; exit 1; }
    echo "$serve_out" | grep "total alerts:"
    echo "framed TLS round-trip through repro serve verified"
else
    echo "openssl not on PATH; skipping the TLS serve smoke"
fi

echo
echo "check.sh: all gates passed"
