#!/usr/bin/env bash
# One-command gate for builders: the tier-1 test suite plus a
# seconds-scale smoke run of the Fig. 1 pipeline bench.
#
#   scripts/check.sh            # full gate
#   scripts/check.sh -k drain   # extra args go to the tier-1 pytest
#
# The tier-1 invocation matches ROADMAP.md exactly; the bench smoke
# runs with MONILOG_BENCH_SMOKE=1 (shrunken fixtures, see
# benchmarks/conftest.py) so it finishes in roughly two seconds while
# still exercising the full parse → detect → classify path and the
# sharded runtime.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: python -m pytest -x -q =="
python -m pytest -x -q "$@"

echo
echo "== smoke: benchmarks/bench_fig1_pipeline.py =="
MONILOG_BENCH_SMOKE=1 python -m pytest benchmarks/bench_fig1_pipeline.py \
    -q -p no:cacheprovider --benchmark-disable

echo
echo "check.sh: all gates passed"
