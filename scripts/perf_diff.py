#!/usr/bin/env python
"""Gate the perf-trajectory ledger from the command line.

A thin launcher: the whole implementation lives in
``repro.perf.trajectory`` (``repro perf`` is the same code path), this
file only makes it runnable from a fresh checkout without installing
the package or exporting ``PYTHONPATH``::

    python scripts/perf_diff.py                # diff the real ledger
    python scripts/perf_diff.py --self-test    # prove the gate fires

Exit status: 0 when nothing regressed (or there is no ledger yet),
1 on a regression beyond a metric's tolerance band, 2 on a malformed
ledger.
"""

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.perf.trajectory import (  # noqa: E402 - after sys.path bootstrap
    DEFAULT_TRAJECTORY,
    main,
)

if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--trajectory" not in argv:
        # Anchor the default ledger at the repo root so the script
        # works from any working directory; an explicit --trajectory
        # stays exactly as the caller wrote it.
        argv = ["--trajectory",
                os.path.join(_REPO_ROOT, DEFAULT_TRAJECTORY)] + argv
    sys.exit(main(argv))
