"""E1 — Eq. 1: token accuracy vs grouping accuracy for every parser.

The paper's metric contribution: grouping accuracy certifies a parser
for *sequential* detection, but quantitative detection "is only
possible if the variable parts were correctly identified" — which is
what Eq. 1 measures.  The bench reports both metrics side by side so
the gap (parsers that group well but locate variables badly) is
visible, on every dataset.
"""

from conftest import once
from repro.eval import Table
from repro.metrics.parsing import parsing_report
from repro.parsing import (
    BATCH_PARSERS,
    ONLINE_PARSERS,
    LogramParser,
    default_masker,
)


def _evaluate(dataset):
    rows = []
    parsers = dict(ONLINE_PARSERS) | dict(BATCH_PARSERS)
    for name in sorted(parsers):
        parser = parsers[name](masker=default_masker())
        if name in BATCH_PARSERS:
            parser.fit(dataset.records)
        if isinstance(parser, LogramParser):
            parser.warmup(dataset.records)
        parsed = parser.parse_all(dataset.records)
        report = parsing_report(parsed, dataset.library)
        rows.append((name, report))
    return rows


def bench_eq1_token_accuracy(benchmark, hdfs_bench, bgl_bench, cloud_bench,
                             emit):
    datasets = {
        "hdfs": hdfs_bench,
        "bgl": bgl_bench,
        "cloud": cloud_bench,
    }

    results = once(
        benchmark,
        lambda: {name: _evaluate(dataset)
                 for name, dataset in datasets.items()},
    )

    for dataset_name, rows in results.items():
        table = Table(
            f"Eq. 1 — token vs grouping accuracy ({dataset_name})",
            ["parser", "grouping acc", "token acc (Eq. 1)", "gap",
             "templates", "true"],
        )
        for name, report in rows:
            table.add_row(
                name,
                report.grouping_accuracy,
                report.token_accuracy,
                report.grouping_accuracy - report.token_accuracy,
                report.predicted_templates,
                report.true_templates,
            )
        emit()
        emit(table.render())

    # Shape: on every dataset at least one parser shows a material gap
    # (grouping high, token accuracy lower) — the metric is not
    # redundant with grouping accuracy.
    gaps = [
        report.grouping_accuracy - report.token_accuracy
        for rows in results.values()
        for _, report in rows
    ]
    assert max(gaps) > 0.02
    # And the metric is achievable: some parser locates variables well.
    token_scores = [
        report.token_accuracy
        for rows in results.values()
        for _, report in rows
    ]
    assert max(token_scores) > 0.9
