"""X11 — adaptive autoscaling vs deliberately mis-sized constants.

MoniLog is pitched as an *automated* monitoring system, yet every
prior bench ran with hand-picked constants.  This bench deploys the
closed loop (:mod:`repro.telemetry` signals →
:class:`~repro.autoscale.controller.AutoscaleController` knobs) on a
bursty multi-source workload and checks two claims:

* **convergence** — starting from pathologically mis-sized constants
  (``ingest_batch_size=1``, ``credits=1``: one record in flight at a
  time, one forced watermark drain per record), the controller grows
  the credit budget (AIMD doubling on observed producer blocking) and
  the micro-batch (sized to the measured arrival rate) until ingestion
  sustains at least ``1.5x`` the throughput of the same mis-sized
  constants left frozen;
* **neutrality** — the alerts of the static run, the autoscaled run,
  and the offline ``LogStream`` reference are byte-identical, in
  identical order: every knob the controller moves is output-neutral,
  so adaptation changes wall-clock only.  ``merger.late == 0`` in the
  adaptive run pins the watermark reorder as exact.

The companion overhead claim — telemetry *disabled* adds nothing to
``bench_fig1_pipeline.py`` — needs no bench of its own: the disabled
path is one ``is None`` check per batch (compare fig1 numbers across
PRs to audit it).
"""

import asyncio
import copy
import os
import time

from conftest import once
from repro.api import Pipeline, PipelineSpec
from repro.eval import Table
from repro.logs.record import LogRecord, Severity
from repro.logs.sources import ReplaySource
from repro.logs.stream import LogStream

_SMOKE = bool(os.environ.get("MONILOG_BENCH_SMOKE"))
_SOURCES = 4
_SESSIONS = 8 if _SMOKE else 20          # per source
_MIN_SPEEDUP = 1.5
# The timeout exceeds the corpus's event-time span, so sessions close
# at the shutdown flush.  Mid-run expiry would make alert timing a
# function of cross-source arrival skew (a lagging source's session
# wedges open across a 40 s gap the moment a faster source advances
# the clock) — an artifact of back-pressure phase, not of autoscaling,
# and this bench isolates the latter.  Deterministic closure is what
# lets it assert *byte-identical* alerts across three runs.
_SESSION_TIMEOUT = 100_000.0
_GAP_S = 40.0        # event-time gap between a source's sessions
_STEP_S = 0.040      # event-time step between a session's records
_LATENESS_S = 5.0    # merge budget: covers the readers' rotation skew
_POLL_S = 0.004      # idle-poll cadence = the static run's drain clock

#: The deliberately mis-sized deployment: one record in flight at a
#: time (credits=1) handed over one at a time (batch=1).  Every record
#: pays a full poll-interval forced-drain cycle.
_MIS_SIZED = dict(ingest_batch_size=1, credits=1, max_batch_age=0.5,
                  lateness=_LATENESS_S, poll_interval=_POLL_S)


def _corpora():
    """History plus one bursty live record list per source.

    Each source emits sessions of bursty traffic separated by gaps
    longer than the session timeout; ~every third of the *first*
    source's sessions takes an error detour for the keyword detector.
    Source shifts make every timestamp globally unique, and confining
    anomalies to one source makes the alert stream a function of that
    source's record order alone (per-source FIFO is an ingestion
    invariant), so byte-identity is a fair assertion even while
    back-pressure phases shift *cross-source* arrival interleaving —
    the other three sources still carry full ingestion and scoring
    load.
    """
    def burst(source, shift, session, anomalous):
        start = 50_000.0 + session * _GAP_S + shift * 0.010
        request = session * 1000 + shift
        messages = (
            [f"request {request} accepted"]
            + [f"request {request} fetched 4096 bytes"] * 3
            + (["backend timeout error detected",
                "retrying request now please"] * 2 if anomalous else [])
            + [f"request {request} completed fine"]
        )
        return [
            LogRecord(
                timestamp=round(start + index * _STEP_S, 6), source=source,
                severity=(Severity.ERROR if "error" in message
                          else Severity.INFO),
                message=message, sequence=index,
                session_id=f"{source}-s{session}",
            )
            for index, message in enumerate(messages)
        ]

    names = [f"svc{index}" for index in range(_SOURCES)]
    history = []
    for shift, name in enumerate(names):
        for session in range(6):
            history.extend(
                burst(name, shift, -10 + session, False))
    history.sort(key=lambda record: record.timestamp)

    live = {}
    for shift, name in enumerate(names):
        records = []
        for session in range(_SESSIONS):
            records.extend(burst(
                name, shift, session,
                anomalous=shift == 0 and session % 3 == 2))
        live[name] = records
    return history, live


def _trained_streaming(base: Pipeline) -> Pipeline:
    return copy.deepcopy(base).stream(session_timeout=_SESSION_TIMEOUT)


def _alert_key(alert):
    return (alert.report.report_id, alert.report.session_id,
            alert.report.events, alert.pool, alert.criticality)


def _serve(base: Pipeline, live, autoscale: dict):
    """One ingestion run over fresh adapter sources; returns
    (alert keys, seconds, service)."""
    spec = PipelineSpec(detector="keyword", streaming=True,
                        session_timeout=_SESSION_TIMEOUT,
                        autoscale=autoscale, **_MIS_SIZED)
    pipeline = _trained_streaming(base)
    # The trained pipeline predates the spec: re-point the knobs the
    # service reads (ingest config + autoscale wiring) at it.
    pipeline.spec = spec
    pipeline.autoscaler = None
    if autoscale:
        from repro.autoscale import AutoscaleController
        pipeline.autoscaler = AutoscaleController(
            spec.autoscale_config(), pipeline=pipeline)
    sources = [
        ReplaySource(name, records).as_async(yield_every=4)
        for name, records in live.items()
    ]
    service = pipeline.serve(sources)
    start = time.perf_counter()
    alerts = asyncio.run(service.run())
    elapsed = time.perf_counter() - start
    return [_alert_key(alert) for alert in alerts], elapsed, service


def bench_x11_autoscale_convergence(benchmark, emit, snapshot):
    history, live = _corpora()
    total = sum(len(records) for records in live.values())

    base = Pipeline(PipelineSpec(detector="keyword"))
    base.fit(history)

    # Offline reference: the interleaved LogStream path.
    replay = [ReplaySource(name, records) for name, records in live.items()]
    offline = _trained_streaming(base)
    expected = offline.process(list(LogStream(replay))) + offline.flush()
    expected = [_alert_key(alert) for alert in expected]
    assert expected, "the injected error sessions must produce alerts"

    # Static run: the mis-sized constants, frozen.
    static_alerts, static_s, static_service = _serve(base, live, {})

    # Adaptive run: same mis-sized start, controller armed.
    def adaptive():
        return _serve(base, live, {
            "interval": 0.04, "min_credits": 1, "min_ingest_batch": 1,
        })

    adaptive_alerts, adaptive_s, adaptive_service = once(benchmark, adaptive)

    assert static_alerts == expected, \
        "the static run must match the offline reference"
    assert adaptive_alerts == expected, \
        "autoscaling must be byte-transparent: identical alerts"
    assert adaptive_service.stats().records_processed == total
    assert static_service.stats().records_processed == total

    status = adaptive_service.stats().autoscale
    knobs = status["knobs"]
    assert status["ticks"] > 0 and knobs["credits"] > 1, \
        "the controller must actually have engaged"

    speedup = static_s / adaptive_s
    table = Table(
        f"X11 — autoscaled vs mis-sized ingestion of {total:,} records "
        f"({_SOURCES} bursty sources, start: batch=1, credits=1)",
        ["deployment", "seconds", "records/s", "speedup", "end state"],
    )
    table.add_row("static (mis-sized)", f"{static_s:.3f}",
                  f"{total / static_s:,.0f}", "1.00x",
                  f"{static_service.forced_drains} forced drains")
    table.add_row(
        "autoscaled", f"{adaptive_s:.3f}", f"{total / adaptive_s:,.0f}",
        f"{speedup:.2f}x",
        f"credits={knobs['credits']:.0f}, "
        f"batch={knobs['ingest_batch_size']:.0f}, "
        f"{status['ticks']} ticks")
    emit()
    emit(table.render())
    emit(f"\nalerts: {len(expected)} (identical across offline / static / "
         f"autoscaled), late in adaptive run: "
         f"{adaptive_service.merger.late}, "
         f"adjustments: {len(status['adjustments'])}")
    snapshot("x11_autoscale", {
        "records": total,
        "static_seconds": round(static_s, 4),
        "autoscaled_seconds": round(adaptive_s, 4),
        "speedup": round(speedup, 3),
        "alerts": len(expected),
        "ticks": status["ticks"],
        "end_credits": round(knobs["credits"]),
        "end_ingest_batch": round(knobs["ingest_batch_size"]),
    })
    assert speedup >= _MIN_SPEEDUP, (
        f"autoscaling must reach >= {_MIN_SPEEDUP}x the mis-sized "
        f"throughput, got {speedup:.2f}x"
    )
