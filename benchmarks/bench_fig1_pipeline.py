"""F1 — Fig. 1: the three-stage pipeline, end to end.

Regenerates the paper's system-design figure as a running artefact:
a multi-source log stream flows through parser → detector →
classifier, and the bench reports one row per stage (records in,
events out, throughput) plus the sharded runtime's load balance — the
"distributable components" claim of §II in numbers.
"""

import time

from conftest import once
from repro import Pipeline, PipelineSpec
from repro.detection import DeepLogDetector, InvariantMiningDetector
from repro.eval import Table


def bench_fig1_pipeline_stages(benchmark, cloud_bench, emit):
    data = cloud_bench
    cut = len(data.records) * 6 // 10
    train, live = data.records[:cut], data.records[cut:]

    system = Pipeline(detector=DeepLogDetector(epochs=8, seed=0))
    system.fit(train)

    def run():
        return system.run_all(live)

    start = time.perf_counter()
    alerts = once(benchmark, run)
    elapsed = time.perf_counter() - start

    table = Table(
        "Fig. 1 — pipeline stages on the live stream",
        ["stage", "input", "output", "throughput"],
    )
    parsed = system.stats().records_parsed - cut
    table.add_row(
        "1. log parser", f"{len(live)} records",
        f"{parsed} events / {system.stats().templates_discovered} templates",
        f"{int(len(live) / elapsed)} rec/s (full pipeline)",
    )
    table.add_row(
        "2. anomaly detector", f"{system.stats().windows_scored} windows",
        f"{system.stats().anomalies_detected} anomaly reports", "",
    )
    table.add_row(
        "3. anomaly classifier", f"{system.stats().anomalies_detected} reports",
        f"{system.stats().alerts_classified} classified alerts", "",
    )
    emit()
    emit(table.render())

    anomalous = set(data.anomalous_sessions())
    flagged = {alert.report.session_id for alert in alerts}
    hits = len(flagged & anomalous)
    emit(f"\nflagged {len(flagged)} sessions, {hits} true anomalies "
         f"(live stream holds {sum(1 for r in live if r.is_anomalous)} "
         "anomalous records)")
    assert alerts, "pipeline must produce alerts on an anomalous stream"


def bench_fig1_sharded_runtime(benchmark, cloud_bench, emit):
    data = cloud_bench
    cut = len(data.records) * 6 // 10
    train, live = data.records[:cut], data.records[cut:]

    sharded = Pipeline(
        PipelineSpec(shards=3, detector_shards=2, detector="invariants"),
    )
    sharded.fit(train)

    alerts = once(benchmark, lambda: sharded.run_all(live))

    table = Table(
        "Fig. 1 — sharded runtime (distributability, §II)",
        ["component", "shards", "load per shard"],
    )
    table.add_row("parser (DistributedDrain)", 3,
                  "/".join(str(load) for load in sharded.parser.shard_loads))
    table.add_row("detector (session-hash route)", 2, "fitted per partition")
    table.add_row("classifier", 1, f"{len(alerts)} alerts")
    emit()
    emit(table.render())
    assert sum(sharded.parser.shard_loads) == len(train) + len(live)
