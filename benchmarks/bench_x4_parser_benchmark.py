"""X4 — planned experiment: online-parser benchmark with automation limits.

"We could like to present a benchmark of existing online log parsing
approaches, focusing on their automation limits." (§IV)

Two automation limits are measured per parser:

* **parameter sensitivity** — accuracy spread (best minus worst) over
  the parser's parameter grid: a parser that needs the right values
  "cannot be deployed in an unknown system with a high level of
  confidence";
* **masking dependence** — accuracy lost when the expert regex
  preprocessing is removed (the no-expert deployment), which doubles
  as the masking ablation from DESIGN.md.
"""

from conftest import once
from repro.core.calibration import DEFAULT_GRIDS, parameter_grid
from repro.eval import Table
from repro.metrics.parsing import grouping_accuracy
from repro.parsing import ONLINE_PARSERS, default_masker, no_masker


def _accuracy(name, parameters, records, library, masked):
    masker = default_masker() if masked else no_masker()
    parser = ONLINE_PARSERS[name](masker=masker, **parameters)
    if name == "logram":
        parser.warmup(records)
    parsed = parser.parse_all(records)
    return grouping_accuracy(parsed, library)


def bench_x4_parser_benchmark(benchmark, hdfs_bench, emit):
    records = hdfs_bench.records[:4000]
    library = hdfs_bench.library

    def run():
        results = {}
        for name in sorted(ONLINE_PARSERS):
            grid = parameter_grid(DEFAULT_GRIDS[name])
            masked_scores = [
                _accuracy(name, parameters, records, library, True)
                for parameters in grid
            ]
            default_masked = _accuracy(name, {}, records, library, True)
            default_bare = _accuracy(name, {}, records, library, False)
            results[name] = {
                "default": default_masked,
                "best": max(masked_scores),
                "worst": min(masked_scores),
                "no_masking": default_bare,
                "grid": len(grid),
            }
        return results

    results = once(benchmark, run)

    table = Table(
        "X4 — online parser benchmark, automation limits (HDFS)",
        ["parser", "defaults", "grid best", "grid worst",
         "sensitivity", "no masking", "masking cost", "grid size"],
    )
    for name, row in results.items():
        table.add_row(
            name,
            row["default"],
            row["best"],
            row["worst"],
            row["best"] - row["worst"],
            row["no_masking"],
            row["default"] - row["no_masking"],
            row["grid"],
        )
    emit()
    emit(table.render())

    # Shape: Drain tops (or ties) the online field on defaults, and
    # every parser's accuracy moves materially across its grid — the
    # automation limit the paper reports.
    best_default = max(row["default"] for row in results.values())
    assert results["drain"]["default"] >= best_default - 0.05
    sensitivities = [
        row["best"] - row["worst"] for row in results.values()
    ]
    assert max(sensitivities) > 0.2
