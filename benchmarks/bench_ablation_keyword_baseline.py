"""Ablation — the §I keyword-matching critique, quantified.

"The use of keyword matching and regular expression helps to detect
simple and well-known anomalous events.  Still, it is unable to
identify a large portion of the anomalies, as many of them are
sequences of 'non-anomalous' logs leading to an undesired outcome."

Recall per anomaly *kind* on HDFS across three rungs of the ladder:
keyword grep (§I practice), a first-order Markov transition model (the
simplest sequence-aware baseline), and DeepLog.  The grep nails
exception-style failures and structurally misses the quiet kinds; the
Markov model recovers the sequence-shaped kinds but not the
quantitative one; DeepLog's two heads cover everything — the gap
structure that motivates the whole MoniLog detection stage.
"""

from conftest import once
from repro.detection import DeepLogDetector, sessions_from_parsed
from repro.detection.keyword import KeywordMatchDetector
from repro.detection.markov import MarkovDetector
from repro.eval import Table
from repro.metrics.detection import confusion_counts
from repro.parsing import DrainParser, default_masker


def bench_ablation_keyword_baseline(benchmark, hdfs_bench, emit):
    def run():
        parser = DrainParser(masker=default_masker())
        session_map = sessions_from_parsed(
            parser.parse_all(hdfs_bench.records)
        )
        normal = [
            session
            for session_id, session in session_map.items()
            if not hdfs_bench.sessions[session_id].anomalous
        ]
        train = normal[: len(normal) // 2]

        detectors = {
            "keyword": KeywordMatchDetector().fit(train),
            "markov": MarkovDetector(threshold=0.01).fit(train),
            "deeplog": DeepLogDetector(epochs=8, seed=0).fit(train),
        }

        per_kind: dict[str, dict[str, list[bool]]] = {}
        predictions = {name: [] for name in detectors}
        truths = []
        for session_id, session in session_map.items():
            truth = hdfs_bench.sessions[session_id]
            if not truth.anomalous and session in train:
                continue
            verdicts = {
                name: detector.predict(session)
                for name, detector in detectors.items()
            }
            for name, verdict in verdicts.items():
                predictions[name].append(verdict)
            truths.append(truth.anomalous)
            if truth.anomalous:
                bucket = per_kind.setdefault(
                    truth.kind or "?", {name: [] for name in detectors}
                )
                for name, verdict in verdicts.items():
                    bucket[name].append(verdict)
        return per_kind, predictions, truths

    per_kind, predictions, truths = once(benchmark, run)

    table = Table(
        "Ablation — recall per anomaly kind: grep vs Markov vs DeepLog (HDFS)",
        ["anomaly kind", "sessions", "keyword", "markov", "deeplog"],
    )
    for kind in sorted(per_kind):
        bucket = per_kind[kind]
        total = len(bucket["keyword"])
        table.add_row(
            kind,
            total,
            sum(bucket["keyword"]) / total,
            sum(bucket["markov"]) / total,
            sum(bucket["deeplog"]) / total,
        )
    reports = {
        name: confusion_counts(verdicts, truths)
        for name, verdicts in predictions.items()
    }
    keyword_report = reports["keyword"]
    deeplog_report = reports["deeplog"]
    table.add_row("OVERALL (recall)", sum(truths),
                  reports["keyword"].recall, reports["markov"].recall,
                  reports["deeplog"].recall)
    emit()
    emit(table.render())
    emit(
        "\noverall F1: "
        + "  ".join(f"{name} {report.f1:.3f}" for name, report in reports.items())
    )

    # Shape (§I): keyword matching catches the loud failures...
    assert sum(per_kind["write_failure"]["keyword"]) == len(
        per_kind["write_failure"]["keyword"]
    )
    # ...and structurally misses the quiet kinds.
    for quiet in ("quantitative", "truncated_replication"):
        if quiet in per_kind:
            assert sum(per_kind[quiet]["keyword"]) == 0, quiet
    assert deeplog_report.recall > keyword_report.recall
