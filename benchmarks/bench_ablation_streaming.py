"""Ablation — streaming vs batch windowing (the real-time claim).

MoniLog "allows real-time scalable anomaly detection" (§VI).  The
streaming runtime closes sessions on an idle timeout instead of seeing
the whole stream; this bench measures what that costs: verdict
agreement with the batch run, detection latency (stream seconds from a
session's last event to its alert), and peak concurrent state across
timeout settings.
"""

from conftest import once
from repro import Pipeline
from repro.detection import DeepLogDetector
from repro.eval import Table

TIMEOUTS = (1.0, 5.0, 30.0)


def bench_ablation_streaming(benchmark, cloud_bench, emit):
    data = cloud_bench
    cut = len(data.records) * 6 // 10
    train, live = data.records[:cut], data.records[cut:]

    system = Pipeline(detector=DeepLogDetector(epochs=8, seed=0))
    system.fit(train)
    batch_flagged = {alert.report.session_id
                     for alert in system.run_offline(live)}

    def run():
        rows = {}
        for timeout in TIMEOUTS:
            streaming = system.stream(session_timeout=timeout)
            last_seen: dict[str, float] = {}
            latencies = []
            flagged = set()
            peak_open = 0
            for record in live:
                if record.session_id:
                    last_seen[record.session_id] = record.timestamp
                for alert in streaming.process_record(record):
                    session_id = alert.report.session_id
                    flagged.add(session_id)
                    if session_id in last_seen:
                        latencies.append(
                            record.timestamp - last_seen[session_id]
                        )
                peak_open = max(peak_open, streaming.sessionizer.open_sessions)
            for alert in streaming.flush():
                flagged.add(alert.report.session_id)
            union = batch_flagged | flagged
            agreement = (
                len(batch_flagged & flagged) / len(union) if union else 1.0
            )
            rows[timeout] = {
                "agreement": agreement,
                "latency": (
                    sum(latencies) / len(latencies) if latencies else 0.0
                ),
                "peak_open": peak_open,
                "alerts": len(flagged),
            }
        return rows

    rows = once(benchmark, run)

    table = Table(
        "Ablation — streaming session timeout (vs batch verdicts)",
        ["timeout (s)", "verdict agreement", "mean alert latency (s)",
         "peak open sessions", "alerts"],
    )
    table.add_row("batch", 1.0, "end of stream", "-", len(batch_flagged))
    for timeout in TIMEOUTS:
        row = rows[timeout]
        table.add_row(timeout, row["agreement"], row["latency"],
                      row["peak_open"], row["alerts"])
    emit()
    emit(table.render())

    # Shape: longer timeouts converge on the batch verdicts; shorter
    # timeouts trade a little agreement for bounded state and fast
    # alerts.
    assert rows[30.0]["agreement"] >= 0.8
    assert rows[1.0]["peak_open"] <= rows[30.0]["peak_open"]
    assert rows[1.0]["latency"] <= rows[30.0]["latency"] + 30.0
