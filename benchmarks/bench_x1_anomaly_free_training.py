"""X1 — planned experiment: anomaly-free vs anomaly-rich training.

"We are interested in studying their precision if trained using an
anomaly-free dataset" (§III).  LogRobust's published numbers come from
50 %-anomalous training sets; deployments rarely have that.  This bench
trains DeepLog, LogAnomaly (unsupervised) and LogRobust (supervised) in
both regimes on the HDFS corpus and reports P/R/F1.
"""

from conftest import once
from repro.detection import (
    DeepLogDetector,
    LogAnomalyDetector,
    LogRobustDetector,
)
from repro.eval import DetectionExperiment, Table, evaluate_detector


def _detectors():
    return {
        "deeplog": DeepLogDetector(epochs=8, seed=0),
        "loganomaly": LogAnomalyDetector(epochs=8, seed=0),
        "logrobust": LogRobustDetector(epochs=25, seed=0),
    }


def bench_x1_anomaly_free_training(benchmark, hdfs_bench, emit):
    def run():
        results = {}
        for regime, anomaly_free in (
            ("anomaly-free", True),
            ("50%-capable (anomalies in training)", False),
        ):
            experiment = DetectionExperiment.from_dataset(
                hdfs_bench,
                anomaly_free_training=anomaly_free,
                train_fraction=0.6,
                seed=2,
            )
            for name, detector in _detectors().items():
                results[(regime, name)] = evaluate_detector(
                    detector, experiment
                )
        return results

    results = once(benchmark, run)

    table = Table(
        "X1 — training-regime study (HDFS)",
        ["training regime", "detector", "precision", "recall", "f1"],
    )
    for (regime, name), report in results.items():
        table.add_row(regime, name, report.precision, report.recall,
                      report.f1)
    emit()
    emit(table.render())

    # Shape (DESIGN.md): unsupervised models keep high recall trained
    # anomaly-free; supervised LogRobust collapses without labelled
    # anomalies but is competitive with them.
    assert results[("anomaly-free", "deeplog")].recall >= 0.8
    assert results[("anomaly-free", "loganomaly")].recall >= 0.5
    assert results[("anomaly-free", "logrobust")].recall == 0.0
    assert results[
        ("50%-capable (anomalies in training)", "logrobust")
    ].f1 > 0.5
