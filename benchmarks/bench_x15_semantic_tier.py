"""X15 — semantic tier: cache effectiveness, parity, discrimination.

Four load-bearing claims for :mod:`repro.detection.semantic_tier`:

* **cache throughput** — on a repeat-heavy template stream the
  :class:`TemplateEmbeddingCache` serves vectors at least 5x faster
  than recomputing every embedding (the cache-disabled path);
* **work proportionality** — full embedding computations grow with
  *distinct* templates, not records: doubling the stream with the same
  template inventory performs zero additional embeds;
* **executor parity** — ``lof`` and ``rollingwindow`` alerts are
  byte-identical under the serial, thread, and process executors
  (sharded, two detector shards), like every other detector;
* **semantic discrimination** — a planted never-seen-*alarming*
  template is flagged by ``lof`` and missed by the count-vector view
  (PCA): counts see only "one unknown template id", which realistic
  count noise drowns, while the embedding view sees a statement far
  from everything the service ever said.

Plus the quality comparison the tier has to earn its keep against:
``lof`` / ``rollingwindow`` vs DeepLog / PCA / invariants on the BGL
and HDFS fixtures through :class:`DetectionExperiment`, written to
``EVAL_semantic_tier.json`` so the eval trajectory is diffable like
the perf trajectory.
"""

import os
import time

from conftest import once
from repro.api import Pipeline, PipelineSpec
from repro.detection import (
    DeepLogDetector,
    InvariantMiningDetector,
    LofDetector,
    PcaDetector,
    RollingWindowDetector,
    TemplateEmbeddingCache,
)
from repro.detection.semantics import SemanticVectorizer
from repro.detection.windows import sessions_from_parsed
from repro.eval import DetectionExperiment, Table, evaluate_detector
from repro.logs.record import LogRecord, Severity
from repro.parsing import DrainParser

_SMOKE = bool(os.environ.get("MONILOG_BENCH_SMOKE"))
_STREAM_LOOKUPS = 4000 if _SMOKE else 40000
_TIMING_REPEATS = 3
_MIN_SPEEDUP = 5.0
_PARITY_SESSIONS = 40 if _SMOKE else 120
_EXECUTORS = ("serial", "thread", "process")

#: The service's statement inventory.  Per-session counts cycle
#: through 1..10, giving the count matrix enough honest variance that
#: PCA's Q-threshold reflects realistic deployments (where session
#: composition varies) rather than a fixed-composition toy.
_BASE = [
    "request {r} accepted from client {c}",
    "request {r} routed to backend {b}",
    "request {r} fetched {n} bytes from disk",
    "cache lookup hit for key {k}",
    "cache lookup miss for key {k}",
    "request {r} completed fine with status 200",
    "heartbeat received from node {b}",
    "connection {c} opened to backend {b}",
    "connection {c} closed normally",
    "scheduled job {k} finished in {n} ms",
]
#: Rare-but-known operational statements (~1 session in 5) so the
#: trained template library has sparse neighbourhoods too.
_RARE = [
    "retry storm recovered after {n} attempts",
    "backend {b} briefly degraded then healthy",
]
_ALIEN = ("irrecoverable data corruption detected on sector 9 "
          "halting immediately")


def _records(messages, session_id, start):
    return [
        LogRecord(timestamp=start + index, source="app",
                  severity=Severity.INFO, message=message,
                  session_id=session_id, sequence=index)
        for index, message in enumerate(messages)
    ]


def _session_messages(s):
    messages = []
    for t, base in enumerate(_BASE):
        count = ((s * 7 + t * 3) % 10) + 1
        for j in range(count):
            messages.append(base.format(
                r=s * 100 + j, c=s % 9, b=(s + t) % 5,
                n=512 * (j + 1), k=s * 10 + t,
            ))
    for t, rare in enumerate(_RARE):
        if (s + t * 2) % 5 == 0:
            for j in range(((s + t) % 3) + 1):
                messages.append(rare.format(n=j + 2, b=s % 5))
    return messages


def _training_sessions(parser, count=40):
    records = []
    for s in range(count):
        records += _records(_session_messages(s), f"train-{s}", s * 1000)
    return list(sessions_from_parsed(parser.parse_all(records)).values())


def _one_session(parser, messages, session_id, start):
    parsed = parser.parse_all(_records(messages, session_id, start))
    return list(sessions_from_parsed(parsed).values())[0]


# -- claim 1 + 2: cache throughput and work proportionality -------------------


def _lookup_stream(templates, lookups):
    """Repeat-heavy stream: every template, round-robin, many times."""
    return [templates[i % len(templates)] for i in range(lookups)]


def _time_cached(templates, stream):
    cache = TemplateEmbeddingCache(SemanticVectorizer())
    cache.vectorizer.fit(templates)
    for template in templates:  # warm: one miss per distinct template
        cache.vector(template)
    start = time.perf_counter()
    for template in stream:
        cache.vector(template)
    return time.perf_counter() - start, cache


def _time_uncached(templates, stream):
    vectorizer = SemanticVectorizer()
    vectorizer.fit(templates)
    start = time.perf_counter()
    for template in stream:
        vectorizer.embed(template)
    return time.perf_counter() - start


def _cache_claims(parser):
    train = _training_sessions(parser)
    templates = sorted({event.template for session in train
                        for event in session})
    stream = _lookup_stream(templates, _STREAM_LOOKUPS)
    best = {"cached": float("inf"), "uncached": float("inf")}
    cache = None
    for _ in range(_TIMING_REPEATS):  # interleaved best-of-N
        elapsed, run_cache = _time_cached(templates, stream)
        if elapsed < best["cached"]:
            best["cached"], cache = elapsed, run_cache
        best["uncached"] = min(best["uncached"],
                               _time_uncached(templates, stream))
    speedup = best["uncached"] / best["cached"]

    # Proportionality: same inventory, double the records, zero new
    # embeds — the embed-call count tracks distinct templates exactly.
    single = TemplateEmbeddingCache(SemanticVectorizer())
    single.vectorizer.fit(templates)
    for template in stream:
        single.vector(template)
    embeds_single = single.embed_calls
    double = TemplateEmbeddingCache(SemanticVectorizer())
    double.vectorizer.fit(templates)
    for template in stream + stream:
        double.vector(template)
    embeds_double = double.embed_calls
    return {
        "templates": len(templates),
        "lookups": len(stream),
        "cached_s": best["cached"],
        "uncached_s": best["uncached"],
        "speedup": speedup,
        "hit_rate": cache.hits / (cache.hits + cache.misses),
        "embeds_single": embeds_single,
        "embeds_double": embeds_double,
    }


# -- claim 3: executor parity --------------------------------------------------


def _parity_records(prefix, count, alien_every=0):
    records = []
    for s in range(count):
        start = s * 40.0
        request = s * 1000 + 17
        messages = (
            [f"request {request} accepted"]
            + [f"request {request} fetched 4096 bytes"] * 3
            + ([_ALIEN] if alien_every and s % alien_every == 2 else [])
            + [f"request {request} completed fine"]
        )
        for sequence, message in enumerate(messages):
            records.append(LogRecord(
                timestamp=round(start + sequence * 0.040, 3),
                source=prefix, severity=Severity.INFO, message=message,
                session_id=f"{prefix}-{s}", sequence=sequence,
            ))
    return records


def _alert_key(alert):
    return (alert.report.report_id, alert.report.session_id,
            alert.report.events, alert.pool, alert.criticality)


def _parity_matrix():
    history = _parity_records("hist", 10)
    live = _parity_records("live", _PARITY_SESSIONS, alien_every=5)
    matrix = {}
    for executor in _EXECUTORS:
        for detector in ("lof", "rollingwindow"):
            spec = PipelineSpec.from_dict({
                "detector": detector, "executor": executor,
                "shards": 2, "detector_shards": 2, "batch_size": 64,
                "session_timeout": 30.0,
            })
            with Pipeline.from_spec(spec) as pipeline:
                pipeline.fit(history)
                matrix[(executor, detector)] = [
                    _alert_key(alert) for alert in pipeline.process(live)
                ]
    return matrix, len(live)


# -- claim 4: planted-template discrimination ---------------------------------


def _discrimination(parser):
    train = _training_sessions(parser)
    planted_messages = _session_messages(101)
    planted_messages.insert(5, _ALIEN)
    planted = _one_session(parser, planted_messages, "planted", 99000)
    benign = _one_session(parser, _session_messages(102), "benign", 98000)

    lof = LofDetector().fit(train)
    pca = PcaDetector().fit(train)
    return {
        "lof_planted": lof.detect(planted),
        "lof_benign": lof.detect(benign),
        "pca_planted": pca.detect(planted),
        "pca_benign": pca.detect(benign),
    }


# -- quality comparison --------------------------------------------------------


def _study_detectors():
    return {
        "lof": LofDetector(),
        "rollingwindow": RollingWindowDetector(),
        "deeplog": DeepLogDetector(epochs=8, seed=0),
        "pca": PcaDetector(),
        "invariants": InvariantMiningDetector(),
    }


def _evaluate(datasets):
    rows = {}
    for dataset_name, dataset in datasets.items():
        experiment = DetectionExperiment.from_dataset(
            dataset, train_fraction=0.6, seed=2,
        )
        rows[dataset_name] = {
            name: evaluate_detector(detector, experiment).as_row()
            for name, detector in _study_detectors().items()
        }
    return rows


def bench_x15_semantic_tier(benchmark, bgl_bench, hdfs_bench, emit,
                            snapshot, eval_snapshot):
    parser = DrainParser()

    def measure():
        cache = _cache_claims(parser)
        matrix, live_records = _parity_matrix()
        verdicts = _discrimination(DrainParser())
        rows = _evaluate({"bgl": bgl_bench, "hdfs": hdfs_bench})
        return cache, matrix, live_records, verdicts, rows

    cache, matrix, live_records, verdicts, rows = once(benchmark, measure)

    # Claim 1: the per-template cache keeps the hot path flat.
    assert cache["speedup"] >= _MIN_SPEEDUP, (
        f"cached embedding only {cache['speedup']:.1f}x the uncached "
        f"path (bound {_MIN_SPEEDUP:.0f}x) over {cache['lookups']:,} "
        "repeat-heavy lookups"
    )

    # Claim 2: embeds track distinct templates, not records.
    assert cache["embeds_single"] == cache["templates"]
    assert cache["embeds_double"] == cache["embeds_single"], (
        f"doubling the stream grew embed calls "
        f"{cache['embeds_single']} -> {cache['embeds_double']} — "
        "embedding work must be per-template, not per-record"
    )

    # Claim 3: byte-identical alerts across executors.
    for detector in ("lof", "rollingwindow"):
        reference = matrix[("serial", detector)]
        for executor in _EXECUTORS:
            assert matrix[(executor, detector)] == reference, (
                f"{detector!r} alerts diverged under {executor!r}"
            )
    assert matrix[("serial", "lof")], (
        "the planted alien sessions must alert under lof"
    )

    # Claim 4: the semantic view catches what the count view cannot.
    assert verdicts["lof_planted"].anomalous, (
        "lof must flag the never-seen-alarming template"
    )
    assert not verdicts["lof_benign"].anomalous, (
        "lof must pass the benign in-distribution session"
    )
    assert not verdicts["pca_planted"].anomalous, (
        "PCA sees only an unknown template id in the count vector — "
        "the planted session must stay under its Q-threshold"
    )
    assert not verdicts["pca_benign"].anomalous
    assert any("nearest" in reason
               for reason in verdicts["lof_planted"].reasons), (
        "lof reasons must carry nearest-neighbour provenance"
    )

    for dataset_name, dataset_rows in rows.items():
        for name, row in dataset_rows.items():
            for metric, value in row.items():
                assert 0.0 <= value <= 1.0, (dataset_name, name, metric)

    cache_table = Table(
        f"X15 — embedding cache over {cache['lookups']:,} lookups "
        f"({cache['templates']} distinct templates)",
        ["path", "seconds", "speedup", "embed calls"],
    )
    cache_table.add_row("uncached", f"{cache['uncached_s']:.3f}", "1.0x",
                        cache["lookups"])
    cache_table.add_row("cached", f"{cache['cached_s']:.3f}",
                        f"{cache['speedup']:.1f}x", cache["templates"])
    emit()
    emit(cache_table.render())

    eval_table = Table(
        "X15 — semantic tier vs study set (anomaly-free training)",
        ["dataset", "detector", "precision", "recall", "f1"],
    )
    for dataset_name, dataset_rows in rows.items():
        for name, row in dataset_rows.items():
            eval_table.add_row(dataset_name, name, row["precision"],
                               row["recall"], row["f1"])
    emit()
    emit(eval_table.render())
    emit(f"\nalerts byte-identical across {len(matrix)} executor x "
         f"detector cells over {live_records:,} records; planted "
         f"alien: lof score "
         f"{verdicts['lof_planted'].score:.2f} (flagged), pca score "
         f"{verdicts['pca_planted'].score:.2f} (under threshold)")

    eval_snapshot("semantic_tier", {"datasets": rows})
    snapshot("x15_semantic_tier", {
        "templates": cache["templates"],
        "lookups": cache["lookups"],
        "cache_speedup": round(cache["speedup"], 2),
        "cache_hit_rate": round(cache["hit_rate"], 4),
        "embeds_single": cache["embeds_single"],
        "embeds_double": cache["embeds_double"],
        "parity_cells": len(matrix),
        "parity_alerts": len(matrix[("serial", "lof")]),
        "lof_planted_score": round(verdicts["lof_planted"].score, 4),
        "pca_planted_score": round(verdicts["pca_planted"].score, 4),
        "pca_planted_anomalous": int(verdicts["pca_planted"].anomalous),
        "lof_hdfs_f1": rows["hdfs"]["lof"]["f1"],
        "rollingwindow_hdfs_f1": rows["hdfs"]["rollingwindow"]["f1"],
    })
