"""X12 — elastic resharding vs a statically mis-sized shard count.

PR 5's autoscaler could only *advise* on shard imbalance; this bench
deploys the graduated knob: rendezvous-routed shards resized live by
the controller, with each relocated key's template state migrated in
place.  Two claims are checked, not just reported:

* **throughput** — on a workload whose sources all hash to one of two
  shards (the mis-sized deployment an operator gets by guessing), the
  autoscaled run detects the imbalance from the measured per-key
  loads, reshards to the smallest count whose *predicted* imbalance
  clears the threshold, and sustains at least 1.5x the static run's
  throughput;
* **exactness** — resharding changes wall-clock only.  Parsed events
  are byte-identical between the static and the resharded run, and
  the classified alert stream is byte-identical across the serial,
  thread, and process executors with a reshard dropped mid-run —
  template ids included, because migration maps every relocated
  template onto its existing global id.

What the speedup measures: each shard is wrapped with a per-record
service latency modelling a remote parser worker (the cost a deployed
sharded parser pays to its workers).  The thread pool overlaps
shards, so a batch costs the *heaviest* shard's service time — with
every key colocated that is the whole batch; after resharding it is
the largest surviving key group.  The win is therefore exactly what
elastic resharding buys, on any interpreter, GIL or not.
"""

import os
import time

from conftest import once
from repro.api import Pipeline, PipelineSpec
from repro.autoscale import AutoscaleConfig, AutoscaleController
from repro.core.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
)
from repro.eval import Table
from repro.logs.record import LogRecord, Severity
from repro.parsing import DistributedDrain, default_masker
from repro.parsing.distributed import rendezvous_shard

_SMOKE = bool(os.environ.get("MONILOG_BENCH_SMOKE"))
_LINES = 4_000 if _SMOKE else 16_000
_BATCH = 400 if _SMOKE else 1_000
_SERVICE_S = 0.00015 if _SMOKE else 0.00010   # per-record worker latency
_MIN_SPEEDUP = 1.5
_RESHARD_AT = 6  # mid-run target for the executor-parity leg

#: Six service names that all hash to shard 0 of 2 (the mis-sized
#: case) yet spread over distinct shards as the count grows — chosen
#: by scanning name pools, pinned here so the skew is reproducible.
_SOURCES = ["auth-cache", "feed-writer", "gate-proxy",
            "mail-proxy", "push-cache", "push-proxy"]
assert all(rendezvous_shard(source, 2) == 0 for source in _SOURCES)


def _stream(lines: int, error_every: int = 13) -> list[LogRecord]:
    """A repetitive multi-service stream with occasional error bursts.

    Every message leads with the (digit-free) service name, so each
    source parses in its own Drain subtree and byte-identity across
    different shard layouts is a fair assertion.  Every
    ``error_every``-th session takes an error detour for the keyword
    detector to alert on.
    """
    records: list[LogRecord] = []
    session = 0
    while len(records) < lines:
        source = _SOURCES[session % len(_SOURCES)]
        session_id = f"sx12-{session}"
        request = session * 7919
        body = (
            [(Severity.INFO, f"{source} request {request} accepted")]
            + [(Severity.INFO,
                f"{source} request {request} fetched 4096 bytes")] * 3
            + [(Severity.INFO,
                f"{source} request {request} completed in 12 ms")]
        )
        if session % error_every == 0:
            body[2:2] = [
                (Severity.ERROR, f"{source} backend timeout error"),
                (Severity.WARNING, f"{source} retrying request {request}"),
            ] * 2
        for sequence, (severity, message) in enumerate(body):
            records.append(LogRecord(
                timestamp=float(len(records)), source=source,
                severity=severity, message=message,
                session_id=session_id, sequence=sequence,
            ))
        session += 1
    return records[:lines]


class _RemoteWorkerShard:
    """A shard parser priced like a remote worker.

    Sleeps a per-record service latency before delegating
    ``parse_batch``; every other attribute (template export/install,
    the store, counts) passes straight through, so resize migration
    and reconciliation see the real parser.
    """

    def __init__(self, parser, per_record: float) -> None:
        self._parser = parser
        self._per_record = per_record

    def parse_batch(self, records):
        time.sleep(self._per_record * len(records))
        return self._parser.parse_batch(records)

    def __getattr__(self, name):
        return getattr(self._parser, name)


def _wrap_all(drain: DistributedDrain) -> None:
    drain.parsers = [
        shard if isinstance(shard, _RemoteWorkerShard)
        else _RemoteWorkerShard(shard, _SERVICE_S)
        for shard in drain.parsers
    ]


class _ControlledDrain:
    """The controller-facing pipeline slice around a raw drain."""

    def __init__(self, drain: DistributedDrain) -> None:
        self.parser = drain
        self.sharded = True
        self.batch_size = _BATCH
        self.reports = []

    def reshard(self, shards: int):
        report = self.parser.resize(shards)
        _wrap_all(self.parser)  # resize appends raw (unpriced) shards
        self.reports.append(report)
        return report


def _remote_drain(executor) -> DistributedDrain:
    drain = DistributedDrain(shards=2, masker=default_masker(),
                             executor=executor)
    _wrap_all(drain)
    return drain


def _parse_batches(drain, records, controller=None):
    out = []
    for index, start in enumerate(range(0, len(records), _BATCH)):
        out.extend(drain.parse_batch(records[start:start + _BATCH]))
        if controller is not None:
            controller.tick(float(index))
    return out


def bench_x12_autoscaled_reshard_throughput(benchmark, emit, snapshot):
    records = _stream(_LINES)

    static_executor = ThreadedExecutor(max_workers=8)
    static = _remote_drain(static_executor)
    start = time.perf_counter()
    expected = _parse_batches(static, records)
    static_s = time.perf_counter() - start
    static_executor.close()
    assert static.shards == 2
    # The mis-sizing is real: every record landed on shard 0.
    assert static.shard_loads[1] == 0

    auto_executor = ThreadedExecutor(max_workers=8)
    auto = _remote_drain(auto_executor)
    pipe = _ControlledDrain(auto)
    controller = AutoscaleController(
        AutoscaleConfig(enabled=True, reshard=True,
                        imbalance_threshold=1.5, reshard_cooldown=0.0,
                        max_shards=8),
        pipeline=pipe, clock=lambda: 0.0)
    start = time.perf_counter()
    actual = once(benchmark,
                  lambda: _parse_batches(auto, records, controller))
    auto_s = time.perf_counter() - start
    auto_executor.close()

    assert pipe.reports, "the controller must graduate to a real resize"
    report = pipe.reports[0]
    assert auto.shards > 2
    assert report.keys_moved > 0 and report.templates_moved > 0
    # Resharding is output-neutral: same events, same ids, same order.
    assert actual == expected, \
        "resharded parsing must be byte-identical to the static run"
    assert auto.global_templates() == static.global_templates()
    assert sum(auto.shard_loads) == sum(static.shard_loads) == len(records)

    speedup = static_s / auto_s
    table = Table(
        f"X12 — {len(records):,} lines over {len(_SOURCES)} services, "
        f"all colocated at 2 shards ({_SERVICE_S * 1e6:.0f} us/record "
        "remote service time)",
        ["deployment", "shards", "seconds", "records/s", "speedup"],
    )
    table.add_row("static mis-sized", "2", f"{static_s:.3f}",
                  f"{len(records) / static_s:,.0f}", "1.00x")
    table.add_row("autoscaled reshard", f"2 -> {auto.shards}",
                  f"{auto_s:.3f}", f"{len(records) / auto_s:,.0f}",
                  f"{speedup:.2f}x")
    emit()
    emit(table.render())
    emit(f"\nreshard: {report.old_shards} -> {report.new_shards} shards, "
         f"{report.keys_moved}/{report.keys_total} keys and "
         f"{report.templates_moved} templates moved "
         f"({report.bytes_moved} delta bytes) in {report.seconds:.4f}s")
    snapshot("x12_elastic_resharding", {
        "lines": len(records),
        "static_seconds": round(static_s, 4),
        "autoscaled_seconds": round(auto_s, 4),
        "speedup": round(speedup, 3),
        "shards_after": auto.shards,
        "reshard": {
            "old_shards": report.old_shards,
            "new_shards": report.new_shards,
            "keys_moved": report.keys_moved,
            "templates_moved": report.templates_moved,
            "bytes_moved": report.bytes_moved,
        },
    })
    assert speedup >= _MIN_SPEEDUP, (
        f"autoscaled resharding must be >= {_MIN_SPEEDUP}x the static "
        f"mis-sized deployment, got {speedup:.2f}x"
    )


def _alert_shape(alert):
    return (
        alert.report.report_id,
        alert.report.session_id,
        tuple(
            (event.template_id, event.template, event.variables,
             event.record.message)
            for event in alert.report.events
        ),
        alert.pool,
        alert.criticality,
    )


def _run_with_midstream_reshard(executor, train, live, reshard_to=None):
    system = Pipeline(
        PipelineSpec(shards=2, detector_shards=2, detector="keyword"),
        executor=executor,
    )
    system.fit(train)
    half = len(live) // 2
    alerts = list(system.run_all(live[:half]))
    if reshard_to is not None:
        system.reshard(reshard_to)
    alerts += system.run_all(live[half:])
    return system, [_alert_shape(alert) for alert in alerts]


def bench_x12_alert_parity_across_executors_and_reshard(benchmark, emit,
                                                        snapshot):
    records = _stream(_LINES // 2)
    cut = len(records) * 2 // 10
    train, live = records[:cut], records[cut:]

    # Control: same pipeline, no reshard — pins reshard neutrality.
    _, control = _run_with_midstream_reshard(SerialExecutor(), train, live)
    _, serial = _run_with_midstream_reshard(SerialExecutor(), train, live,
                                            reshard_to=_RESHARD_AT)
    assert serial, "the injected error sessions must produce alerts"
    assert serial == control, \
        "a mid-run reshard must not change one alert byte"

    threaded_executor = ThreadedExecutor(max_workers=4)
    _, threaded = _run_with_midstream_reshard(
        threaded_executor, train, live, reshard_to=_RESHARD_AT)
    threaded_executor.close()

    process_executor = ProcessExecutor(max_workers=4)
    process_system, process = once(benchmark, lambda: _run_with_midstream_reshard(
        process_executor, train, live, reshard_to=_RESHARD_AT))
    sync = process_system.parser.sync_stats
    process_executor.close()

    assert threaded == serial, \
        "thread-pool alerts must match serial across the reshard"
    assert process == serial, \
        "process-pool alerts must match serial across the reshard"
    # The process run warmed its replicas via deltas, not re-pickles.
    assert sync["full_syncs"] <= process_system.parser.shards
    assert sync["bytes_from_workers"] > 0

    emit()
    emit(f"X12 parity: {len(serial)} alerts byte-identical across "
         f"serial/thread/process with a 2 -> {_RESHARD_AT} reshard "
         f"mid-run (control run without reshard also identical)")
    emit(f"process replica sync: {sync['full_syncs']} full syncs, "
         f"{sync['delta_syncs']} delta syncs, "
         f"{sync['bytes_to_workers']}B out / "
         f"{sync['bytes_from_workers']}B back")
    snapshot("x12_alert_parity", {
        "alerts": len(serial),
        "reshard_to": _RESHARD_AT,
        "full_syncs": sync["full_syncs"],
        "delta_syncs": sync["delta_syncs"],
        "sync_bytes_to_workers": sync["bytes_to_workers"],
        "sync_bytes_from_workers": sync["bytes_from_workers"],
    })


def bench_x12_reshard_telemetry(benchmark, emit):
    system = Pipeline(PipelineSpec(shards=2, detector="keyword",
                                   telemetry={"enabled": True}))
    records = _stream(2_000)
    cut = len(records) // 5
    system.fit(records[:cut])

    def run():
        alerts = system.run_all(records[cut:])
        system.reshard(4)
        return alerts

    once(benchmark, run)
    text = system.metrics_text()
    for family in ("monilog_reshard_total", "monilog_reshard_keys_moved_total",
                   "monilog_reshard_templates_moved_total",
                   "monilog_reshard_bytes_total", "monilog_reshard_seconds",
                   "monilog_shards", "monilog_template_sync_bytes_total",
                   "monilog_template_full_syncs_total"):
        assert f"# TYPE {family}" in text, f"missing metric family {family}"
    assert "monilog_reshard_total 1" in text
    assert "monilog_shards 4" in text
    emit()
    emit("X12 telemetry: monilog_reshard_* families present, "
         "reshard_total=1, shards gauge follows the resize")
