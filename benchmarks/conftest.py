"""Shared benchmark fixtures.

Every bench prints its result tables live (bypassing pytest capture via
``emit``) so that ``pytest benchmarks/ --benchmark-only | tee ...``
records the same rows the paper's tables would hold, and runs its
heavyweight computation exactly once via ``benchmark.pedantic`` —
pytest-benchmark measures that single round's wall clock.

Dataset sizes are chosen so the full bench suite completes in minutes
on a laptop while keeping every result qualitatively stable.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_bgl, generate_cloud_platform, generate_hdfs


@pytest.fixture
def emit(capsys):
    """Print through pytest's capture so tee'd output keeps the tables."""

    def _emit(text: str = "") -> None:
        with capsys.disabled():
            print(text)

    return _emit


@pytest.fixture(scope="session")
def hdfs_bench():
    return generate_hdfs(sessions=500, anomaly_rate=0.06, seed=5)


@pytest.fixture(scope="session")
def bgl_bench():
    return generate_bgl(records=8000, alert_episodes=10, seed=5)


@pytest.fixture(scope="session")
def cloud_bench():
    return generate_cloud_platform(sessions=400, anomaly_rate=0.06, seed=5)


@pytest.fixture(scope="session")
def cloud_json_bench():
    return generate_cloud_platform(
        sessions=300, anomaly_rate=0.05, json_suffix=True, seed=5
    )


def once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, rounds=1, iterations=1,
                              warmup_rounds=0)
