"""Shared benchmark fixtures.

Every bench prints its result tables live (bypassing pytest capture via
``emit``) so that ``pytest benchmarks/ --benchmark-only | tee ...``
records the same rows the paper's tables would hold, and runs its
heavyweight computation exactly once via ``benchmark.pedantic`` —
pytest-benchmark measures that single round's wall clock.

Dataset sizes are chosen so the full bench suite completes in minutes
on a laptop while keeping every result qualitatively stable.  Setting
``MONILOG_BENCH_SMOKE=1`` shrinks the shared fixtures (and the X8
stream) so a bench doubles as a seconds-scale smoke test —
``scripts/check.sh`` uses this for its one-command gate.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import generate_bgl, generate_cloud_platform, generate_hdfs

_SMOKE = bool(os.environ.get("MONILOG_BENCH_SMOKE"))


def _scaled(full: int, smoke: int) -> int:
    return smoke if _SMOKE else full


@pytest.fixture
def emit(capsys):
    """Print through pytest's capture so tee'd output keeps the tables."""

    def _emit(text: str = "") -> None:
        with capsys.disabled():
            print(text)

    return _emit


@pytest.fixture(scope="session")
def hdfs_bench():
    return generate_hdfs(sessions=_scaled(500, 150), anomaly_rate=0.06, seed=5)


@pytest.fixture(scope="session")
def bgl_bench():
    return generate_bgl(records=_scaled(8000, 2500), alert_episodes=10, seed=5)


@pytest.fixture(scope="session")
def cloud_bench():
    return generate_cloud_platform(sessions=_scaled(400, 150),
                                   anomaly_rate=0.06, seed=5)


@pytest.fixture(scope="session")
def cloud_json_bench():
    return generate_cloud_platform(
        sessions=_scaled(300, 120), anomaly_rate=0.05, json_suffix=True, seed=5
    )


def once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, rounds=1, iterations=1,
                              warmup_rounds=0)
