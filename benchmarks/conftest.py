"""Shared benchmark fixtures.

Every bench prints its result tables live (bypassing pytest capture via
``emit``) so that ``pytest benchmarks/ --benchmark-only | tee ...``
records the same rows the paper's tables would hold, and runs its
heavyweight computation exactly once via ``benchmark.pedantic`` —
pytest-benchmark measures that single round's wall clock.

Dataset sizes are chosen so the full bench suite completes in minutes
on a laptop while keeping every result qualitatively stable.  Setting
``MONILOG_BENCH_SMOKE=1`` shrinks the shared fixtures (and the X8
stream) so a bench doubles as a seconds-scale smoke test —
``scripts/check.sh`` uses this for its one-command gate.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.datasets import generate_bgl, generate_cloud_platform, generate_hdfs
from repro.perf.trajectory import append_entry

_SMOKE = bool(os.environ.get("MONILOG_BENCH_SMOKE"))
_SNAPSHOT_DIR = os.environ.get(
    "MONILOG_BENCH_SNAPSHOT_DIR",
    os.path.join(os.path.dirname(__file__), "results"),
)
#: The append-only perf ledger (scripts/perf_diff.py gates it); it
#: follows the snapshot dir so redirected runs keep their history
#: separate from the committed one.
_TRAJECTORY = os.environ.get(
    "MONILOG_BENCH_TRAJECTORY",
    os.path.join(_SNAPSHOT_DIR, "TRAJECTORY.jsonl"),
)


def _scaled(full: int, smoke: int) -> int:
    return smoke if _SMOKE else full


@pytest.fixture
def emit(capsys):
    """Print through pytest's capture so tee'd output keeps the tables."""

    def _emit(text: str = "") -> None:
        with capsys.disabled():
            print(text)

    return _emit


@pytest.fixture(scope="session")
def hdfs_bench():
    return generate_hdfs(sessions=_scaled(500, 150), anomaly_rate=0.06, seed=5)


@pytest.fixture(scope="session")
def bgl_bench():
    return generate_bgl(records=_scaled(8000, 2500), alert_episodes=10, seed=5)


@pytest.fixture(scope="session")
def cloud_bench():
    return generate_cloud_platform(sessions=_scaled(400, 150),
                                   anomaly_rate=0.06, seed=5)


@pytest.fixture(scope="session")
def cloud_json_bench():
    return generate_cloud_platform(
        sessions=_scaled(300, 120), anomaly_rate=0.05, json_suffix=True, seed=5
    )


@pytest.fixture
def snapshot():
    """Persist a machine-readable result row next to the printed table.

    Writes ``BENCH_<name>.json`` under ``benchmarks/results/`` (or
    ``MONILOG_BENCH_SNAPSHOT_DIR``) so CI and the repo's check gate can
    diff headline numbers across runs without scraping stdout.  The
    payload always records whether it came from a smoke-sized run —
    smoke and full numbers are not comparable.

    Every numeric headline additionally lands as one appended line in
    the perf-trajectory ledger (``TRAJECTORY.jsonl``, same directory),
    keyed by bench name, git commit, and the smoke flag —
    ``scripts/perf_diff.py`` / ``repro perf`` gate the latest entry of
    each bench against the median of its own history.
    """

    def _snapshot(name: str, payload: dict) -> str:
        os.makedirs(_SNAPSHOT_DIR, exist_ok=True)
        path = os.path.join(_SNAPSHOT_DIR, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"smoke": _SMOKE, **payload}, handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        metrics = {
            key: value for key, value in payload.items()
            if isinstance(value, (int, float))
            and not isinstance(value, bool)
        }
        if metrics:
            append_entry(_TRAJECTORY, name, metrics, smoke=_SMOKE)
        return path

    return _snapshot


@pytest.fixture
def eval_snapshot():
    """Persist detector-quality results (``EVAL_<name>.json``).

    The eval counterpart of :func:`snapshot`: per-detector
    precision/recall/F1 rows, nested ``{dataset: {detector: row}}``,
    written alongside the ``BENCH_*.json`` perf snapshots so the
    quality trajectory is diffable exactly like the perf trajectory.
    """

    def _eval_snapshot(name: str, payload: dict) -> str:
        os.makedirs(_SNAPSHOT_DIR, exist_ok=True)
        path = os.path.join(_SNAPSHOT_DIR, f"EVAL_{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"smoke": _SMOKE, **payload}, handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        return path

    return _eval_snapshot


def once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, rounds=1, iterations=1,
                              warmup_rounds=0)
