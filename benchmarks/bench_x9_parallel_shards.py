"""X9 — concurrent shard execution vs. the serial reference.

PR 1 made the pipeline cheap per record; this bench measures the next
lever: actually running the parser shards side by side (the paper's
§II distribution requirement).  Two claims are checked, not just
reported:

* throughput — with 4 parser shards, draining micro-batches through
  the threaded executor is at least 1.5× faster than the serial
  executor on the same sharded parser;
* exactness — concurrency changes wall-clock only: parsed events,
  shard loads, and classified alerts are byte-identical between
  executors, in identical order, and the read-only
  ``consistency_with`` probe leaves pools, report counters, and shard
  Drain trees untouched.

What the speedup measures: each shard is wrapped with a small
fixed per-call dispatch latency modelling the hop to a remote shard
worker (network round-trip + dequeue — the cost any real distributed
parser pays per batch).  The serial executor pays the hop once per
busy shard per micro-batch, back to back; the threaded executor
overlaps them.  On a multi-core interpreter the pool additionally
overlaps shard CPU; on a single-core/GIL build the overlap of
dispatch latency is exactly the win that distribution buys, so the
bench is meaningful (and its assertion reachable) on any machine.
"""

import os
import random
import threading
import time

from conftest import once
from repro.api import Pipeline, PipelineSpec
from repro.core.executors import SerialExecutor, ThreadedExecutor
from repro.eval import Table
from repro.logs.record import LogRecord, Severity
from repro.parsing import DistributedDrain, default_masker, parse_in_batches

_SMOKE = bool(os.environ.get("MONILOG_BENCH_SMOKE"))
_LINES = 4_000 if _SMOKE else 24_000
_BATCH = 500 if _SMOKE else 1_500
_HOP_S = 0.006 if _SMOKE else 0.010
_SHARDS = 4
_MIN_SPEEDUP = 1.5


def _stream(lines: int, seed: int = 9) -> list[LogRecord]:
    """A multi-service repetitive stream that balances 4 source shards.

    16 service names hash 4-per-shard under the source router; each
    session's lines repeat a small statement vocabulary (real traffic's
    regime), and ~3% of sessions take an error/retry detour so the
    pipeline half of the bench has anomalies to alert on.
    """
    rng = random.Random(seed)
    sources = [f"svc-{index:02d}" for index in range(16)]
    nodes = [f"10.1.{index // 8}.{index % 8}" for index in range(16)]
    records: list[LogRecord] = []
    session = 0
    while len(records) < lines:
        source = sources[session % len(sources)]
        session_id = f"sx9-{session}"
        session += 1
        node = rng.choice(nodes)
        request = rng.randrange(10 ** 8)
        body = (
            [(Severity.INFO, f"request {request} accepted from {node}")]
            + [(Severity.INFO, f"request {request} routed to backend {node}")]
            + [(Severity.INFO, f"request {request} fetched 1024 bytes")]
            * rng.randrange(2, 5)
            + [(Severity.INFO, f"heartbeat from {node} ok")]
            + [(Severity.INFO, f"request {request} completed in 12 ms")]
        )
        if rng.random() < 0.03:
            body[2:2] = [
                (Severity.ERROR, f"request {request} backend timeout"),
                (Severity.WARNING, f"request {request} retrying on {node}"),
            ] * 3
        for sequence, (severity, message) in enumerate(body):
            records.append(LogRecord(
                timestamp=float(len(records)),
                source=source,
                severity=severity,
                message=message,
                session_id=session_id,
                sequence=sequence,
            ))
    return records[:lines]


class _ConcurrencyWitness:
    """Counts shard tasks in flight; ``peak`` proves real overlap.

    The wall-clock assertion alone could be gamed by the latency
    simulation; the witness pins the mechanism itself — under the
    serial executor at most one shard is ever in flight, under the
    thread pool several must be, or fan-out has silently stopped.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._in_flight = 0
        self.peak = 0

    def __enter__(self) -> "_ConcurrencyWitness":
        with self._lock:
            self._in_flight += 1
            self.peak = max(self.peak, self._in_flight)
        return self

    def __exit__(self, *exc_info) -> None:
        with self._lock:
            self._in_flight -= 1


class _RemoteHopShard:
    """A shard parser with the dispatch latency of a remote worker.

    Wraps a real shard and sleeps ``hop`` seconds per ``parse_batch``
    call — the per-batch round-trip a deployed sharded parser pays to
    reach its worker.  Everything else delegates, so parsed output is
    untouched and reconciliation still sees the real template store.
    """

    def __init__(self, parser, hop: float,
                 witness: _ConcurrencyWitness) -> None:
        self._parser = parser
        self._hop = hop
        self._witness = witness

    def parse_batch(self, records):
        with self._witness:
            time.sleep(self._hop)
            return self._parser.parse_batch(records)

    def parse_record(self, record):
        return self._parser.parse_record(record)

    @property
    def store(self):
        return self._parser.store

    @property
    def template_count(self):
        return self._parser.template_count


def _remote_drain(executor) -> tuple[DistributedDrain, _ConcurrencyWitness]:
    drain = DistributedDrain(shards=_SHARDS, masker=default_masker(),
                             executor=executor)
    witness = _ConcurrencyWitness()
    drain.parsers = [_RemoteHopShard(parser, _HOP_S, witness)
                     for parser in drain.parsers]
    return drain, witness


def bench_x9_parse_throughput(benchmark, emit, snapshot):
    records = _stream(_LINES)

    serial, serial_witness = _remote_drain(SerialExecutor())
    start = time.perf_counter()
    expected = parse_in_batches(serial, records, _BATCH)
    serial_s = time.perf_counter() - start

    threaded_executor = ThreadedExecutor(max_workers=_SHARDS)
    threaded, threaded_witness = _remote_drain(threaded_executor)
    start = time.perf_counter()
    actual = once(
        benchmark, lambda: parse_in_batches(threaded, records, _BATCH)
    )
    threaded_s = time.perf_counter() - start
    threaded_executor.close()

    assert actual == expected, \
        "concurrent shard parsing must be byte-identical to serial"
    assert threaded.shard_loads == serial.shard_loads
    assert threaded.global_templates() == serial.global_templates()
    assert serial_witness.peak == 1, \
        "the serial executor must never overlap shard tasks"
    assert threaded_witness.peak >= 2, (
        "the thread pool must actually overlap shard tasks "
        f"(peak in-flight was {threaded_witness.peak})"
    )

    speedup = serial_s / threaded_s
    batches = -(-len(records) // _BATCH)
    table = Table(
        f"X9 — {_SHARDS}-shard parse of {len(records):,} lines "
        f"({batches} micro-batches, {_HOP_S * 1000:.0f} ms dispatch hop)",
        ["executor", "seconds", "records/s", "speedup"],
    )
    table.add_row("serial", f"{serial_s:.3f}",
                  f"{len(records) / serial_s:,.0f}", "1.00x")
    table.add_row("thread pool", f"{threaded_s:.3f}",
                  f"{len(records) / threaded_s:,.0f}", f"{speedup:.2f}x")
    emit()
    emit(table.render())
    emit(f"\nshard loads: {serial.shard_loads}")
    snapshot("x9_parse_throughput", {
        "lines": len(records),
        "shards": _SHARDS,
        "serial_seconds": round(serial_s, 4),
        "threaded_seconds": round(threaded_s, 4),
        "speedup": round(speedup, 3),
    })
    assert speedup >= _MIN_SPEEDUP, (
        f"threaded shard execution must be >= {_MIN_SPEEDUP}x serial at "
        f"{_SHARDS} shards, got {speedup:.2f}x"
    )


def _build_sharded(train, executor) -> Pipeline:
    # The keyword detector keeps stage 2 deterministic and equally
    # priced under both executors, isolating the concurrency claim.
    system = Pipeline(
        PipelineSpec(shards=_SHARDS, detector_shards=2, detector="keyword"),
        executor=executor,
    )
    system.fit(train)
    return system


def _pool_sizes(system: Pipeline) -> dict[str, int]:
    return {name: len(system.pools.pool(name))
            for name in system.pools.pool_names}


def bench_x9_pipeline_parity_and_readonly_measurement(benchmark, emit,
                                                      snapshot):
    records = _stream(_LINES)
    cut = len(records) * 2 // 10
    train, live = records[:cut], records[cut:]

    serial = _build_sharded(train, SerialExecutor())
    start = time.perf_counter()
    expected = serial.run_all(live)
    serial_s = time.perf_counter() - start

    threaded_executor = ThreadedExecutor(max_workers=_SHARDS)
    threaded = _build_sharded(train, threaded_executor)
    start = time.perf_counter()
    actual = once(benchmark, lambda: threaded.run_all(live))
    threaded_s = time.perf_counter() - start

    assert actual, "the injected error sessions must produce alerts"
    assert [
        (a.report.report_id, a.report.session_id, a.report.events,
         a.pool, a.criticality)
        for a in actual
    ] == [
        (a.report.report_id, a.report.session_id, a.report.events,
         a.pool, a.criticality)
        for a in expected
    ], "alerts must be byte-identical in identical order across executors"

    # Measurement must not perturb the measured system.
    reference = {record.session_id: record.is_anomalous for record in live}
    before = (threaded._report_counter, _pool_sizes(threaded),
              threaded.parser.template_count,
              [parser.store.generation
               for parser in threaded.parser.parsers])
    agreement = threaded.consistency_with(reference, live)
    after = (threaded._report_counter, _pool_sizes(threaded),
             threaded.parser.template_count,
             [parser.store.generation
              for parser in threaded.parser.parsers])
    threaded_executor.close()
    assert after == before, (
        "consistency_with must leave pools, report counters, and shard "
        f"Drain trees untouched; {before} became {after}"
    )

    table = Table(
        f"X9 — sharded pipeline on {len(live):,} live records "
        f"(keyword detector)",
        ["executor", "seconds", "records/s", "alerts"],
    )
    table.add_row("serial", f"{serial_s:.3f}",
                  f"{len(live) / serial_s:,.0f}", len(expected))
    table.add_row("thread pool", f"{threaded_s:.3f}",
                  f"{len(live) / threaded_s:,.0f}", len(actual))
    emit()
    emit(table.render())
    emit(f"\nconsistency with single-run verdicts: {agreement:.3f} "
         f"(probe was read-only)")
    snapshot("x9_pipeline_parity", {
        "live_records": len(live),
        "serial_seconds": round(serial_s, 4),
        "threaded_seconds": round(threaded_s, 4),
        "alerts": len(actual),
        "consistency": round(agreement, 4),
    })
