"""X10 — async concurrent ingestion vs. sequential source draining.

PR 2 made shard *execution* concurrent; this bench measures the other
end of the pipe: reading the sources themselves.  The paper's platform
connects 24 live sources to one MoniLog; our model is N tailed files
ingested through the asyncio front-end (:mod:`repro.ingest`).  Two
claims are checked, not just reported:

* throughput — tailing 4 sources concurrently through one
  :class:`IngestService` sustains at least 2x the throughput of
  draining the same sources one after another (the synchronous
  caller-loop model this subsystem replaces);
* exactness — the live path changes wall-clock only: the alerts it
  produces are byte-identical, in identical order, to the offline
  ``LogStream``/``interleave`` path over the same corpus, and no
  record arrives beyond the merge's lateness budget (so the watermark
  reorder is exact, not best-effort).

What the speedup measures: each tail's chunk reads carry a fixed
latency modelling remote/network storage (the round-trip any real
collector pays per read — the files themselves sit on a local tmpfs).
Sequential draining pays those round-trips source after source;
the async front-end overlaps them across all four tails, which is
exactly the win concurrent ingestion buys on a single-core build.
The concurrency witness (per-source first/last activity spans) pins
the mechanism: all four sources must be mid-read simultaneously.
"""

import asyncio
import copy
import os
import time

from conftest import once
from repro.api import Pipeline, PipelineSpec
from repro.core.config import IngestConfig
from repro.eval import Table
from repro.ingest import FileTailSource, IngestService
from repro.logs.formats import read_log_lines, render_line
from repro.logs.record import LogRecord, Severity
from repro.logs.sources import ReplaySource
from repro.logs.stream import LogStream

_SMOKE = bool(os.environ.get("MONILOG_BENCH_SMOKE"))
_SOURCES = 4
_SESSIONS = 12 if _SMOKE else 40        # per source
_HOP_S = 0.006 if _SMOKE else 0.008     # per-chunk storage round-trip
_CHUNK = 1024 if _SMOKE else 2048       # bytes per (latency-charged) read
_MIN_SPEEDUP = 2.0
_SESSION_TIMEOUT = 30.0
_GAP_S = 40.0      # event-time gap between a source's sessions (> timeout)
_LATENESS_S = 400.0  # merge budget: ~5 chunks of event time at _CHUNK


def _write_corpora(root) -> tuple[list, dict[str, str]]:
    """History records plus one live log file per source.

    Each source emits bursty sessions (idle gaps close them via the
    session timeout); ~every third session takes an error detour so
    the keyword detector has something to alert on.  Timestamps are
    globally distinct and each source's are strictly increasing, so
    the offline interleave order is unique — the precondition for the
    byte-identical-alerts assertion.
    """
    def burst(source, session, start, anomalous):
        records = []
        clock = start
        request = session * 1000 + 17
        messages = (
            [f"request {request} accepted"]
            + [f"request {request} fetched 4096 bytes"] * 3
            + (["backend timeout error detected",
                "retrying request now please"] * 2 if anomalous else [])
            + [f"request {request} completed fine"]
        )
        for sequence, message in enumerate(messages):
            severity = (Severity.ERROR if "error" in message
                        else Severity.INFO)
            records.append(LogRecord(
                timestamp=round(clock, 3), source=source,
                severity=severity, message=message, sequence=sequence,
            ))
            clock += 0.040
        return records

    # No hyphens in source names: the dashed header layout uses " - "
    # as its field separator, so a hyphenated name would not round-trip
    # through render_line -> read_log_lines.
    names = [f"svc{index}" for index in range(_SOURCES)]
    history = []
    for shift, name in enumerate(names):
        for session in range(6):
            history.extend(burst(name, session,
                                 session * _GAP_S + shift * 0.010, False))
    history.sort(key=lambda record: record.timestamp)

    paths = {}
    for shift, name in enumerate(names):
        records = []
        for session in range(_SESSIONS):
            records.extend(burst(
                name, 100 + session,
                50_000.0 + session * _GAP_S + shift * 0.010,
                anomalous=session % 3 == 2,
            ))
        path = os.path.join(root, f"{name}.log")
        paths[name] = path
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(render_line(record) + "\n")
    return history, paths


class _RemoteStorageTail(FileTailSource):
    """A tail whose chunk reads pay a remote-storage round-trip."""

    def __init__(self, *args, hop: float, spans: dict, **kwargs):
        super().__init__(*args, **kwargs)
        self._hop = hop
        self._spans = spans

    async def _read_chunk(self, handle) -> bytes:
        await asyncio.sleep(self._hop)
        now = time.perf_counter()
        first, _ = self._spans.get(self.name, (now, now))
        self._spans[self.name] = (first, now)
        return handle.read(self.chunk_size)


def _trained_streaming(base: Pipeline) -> Pipeline:
    return copy.deepcopy(base).stream(session_timeout=_SESSION_TIMEOUT)


def _ingest_config() -> IngestConfig:
    # Lateness covers the cross-source arrival skew of lockstep chunk
    # reads with lots of margin, so the watermark merge reproduces
    # exact timestamp order (asserted via merger.late == 0).
    return IngestConfig(batch_size=200, max_batch_age=0.5,
                        lateness=_LATENESS_S, credits=8192)


def _alert_key(alert):
    return (alert.report.report_id, alert.report.session_id,
            alert.report.events, alert.pool, alert.criticality)


def bench_x10_concurrent_tailing(benchmark, emit, snapshot,
                                 tmp_path_factory):
    root = tmp_path_factory.mktemp("x10")
    history, paths = _write_corpora(root)

    base = Pipeline(PipelineSpec(detector="keyword"))
    base.fit(history)

    # Reference: the offline LogStream path over the same files.
    replay = []
    for name, path in paths.items():
        with open(path, encoding="utf-8") as handle:
            replay.append(ReplaySource(name, list(read_log_lines(handle))))
    offline = _trained_streaming(base)
    expected = offline.process(list(LogStream(replay))) + offline.flush()
    assert expected, "the injected error sessions must produce alerts"

    # Sequential source draining: one source at a time, same storage
    # latency — the synchronous caller-loop model being replaced.
    sequential_pipeline = _trained_streaming(base)
    start = time.perf_counter()
    for name, path in paths.items():
        source = _RemoteStorageTail(path, name=name, hop=_HOP_S, spans={},
                                    follow=False, chunk_size=_CHUNK)
        service = IngestService([source], sequential_pipeline,
                                config=_ingest_config())
        asyncio.run(service.run())
    sequential_s = time.perf_counter() - start

    # Concurrent tailing: all sources through one IngestService.
    spans: dict = {}
    live = _trained_streaming(base)
    concurrent = IngestService(
        [_RemoteStorageTail(path, name=name, hop=_HOP_S, spans=spans,
                            follow=False, chunk_size=_CHUNK)
         for name, path in paths.items()],
        live,
        config=_ingest_config(),
    )
    start = time.perf_counter()
    actual = once(benchmark, lambda: asyncio.run(concurrent.run()))
    concurrent_s = time.perf_counter() - start

    assert [_alert_key(alert) for alert in actual] == \
        [_alert_key(alert) for alert in expected], \
        "live ingestion must be byte-identical to the offline LogStream path"
    assert concurrent.merger.late == 0, \
        "the lateness budget must cover the tails' arrival skew"
    total = sum(stats for stats in concurrent.stats().records_in.values())
    assert total == sum(len(source._records) for source in replay)

    # Concurrency witness: every source's read span must overlap every
    # other's, or the front-end silently serialized.
    assert len(spans) == _SOURCES
    latest_first = max(first for first, _ in spans.values())
    earliest_last = min(last for _, last in spans.values())
    assert latest_first < earliest_last, (
        "all sources must be mid-read simultaneously; spans were "
        f"{spans}"
    )

    speedup = sequential_s / concurrent_s
    table = Table(
        f"X10 — {_SOURCES}-source ingestion of {total:,} records "
        f"({_HOP_S * 1000:.0f} ms storage hop per {_CHUNK} B chunk)",
        ["ingestion", "seconds", "records/s", "speedup"],
    )
    table.add_row("sequential drain", f"{sequential_s:.3f}",
                  f"{total / sequential_s:,.0f}", "1.00x")
    table.add_row("concurrent tail", f"{concurrent_s:.3f}",
                  f"{total / concurrent_s:,.0f}", f"{speedup:.2f}x")
    emit()
    emit(table.render())
    emit(f"\nalerts: {len(actual)} (identical to offline), "
         f"late records: {concurrent.merger.late}, "
         f"credit waits: {concurrent.gate.waits}")
    snapshot("x10_async_ingestion", {
        "sources": _SOURCES,
        "records": total,
        "sequential_seconds": round(sequential_s, 4),
        "concurrent_seconds": round(concurrent_s, 4),
        "speedup": round(speedup, 3),
        "alerts": len(actual),
        "late_records": concurrent.merger.late,
    })
    assert speedup >= _MIN_SPEEDUP, (
        f"concurrent tailing must sustain >= {_MIN_SPEEDUP}x sequential "
        f"draining at {_SOURCES} sources, got {speedup:.2f}x"
    )
