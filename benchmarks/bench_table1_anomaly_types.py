"""T1 — Table I: the two anomaly categories on the paper's own examples.

The paper's Table I lists four messages (L1–L4) and uses them to define
*sequential* anomalies (the flow L1 → L4 → L2 deviates from normal) and
*quantitative* anomalies (L3: normal flow, absurd byte count).  This
bench trains DeepLog on the normal transfer flow and checks both
examples land in the right category — plus the ablation DESIGN.md calls
out: with the quantitative head disabled, L3 escapes.
"""

from conftest import once
from repro.detection import DeepLogDetector
from repro.eval import Table
from repro.logs.record import LogRecord, ParsedLog, Severity, WILDCARD


SEND = f"Sending {WILDCARD} bytes src: {WILDCARD} dest: {WILDCARD}"
ACK = f"Transfer acknowledged by {WILDCARD}"
RECV_ERROR = f"Error while receiving data src: {WILDCARD} dest: {WILDCARD}"
VERIFY_FAIL = f"Failed to verify data integrity src: {WILDCARD} dest: {WILDCARD}"

TEMPLATE_IDS = {SEND: 0, ACK: 1, RECV_ERROR: 2, VERIFY_FAIL: 3}


def _event(template: str, variables: tuple[str, ...], session: str,
           severity=Severity.INFO) -> ParsedLog:
    message = template
    for value in variables:
        message = message.replace(WILDCARD, value, 1)
    return ParsedLog(
        record=LogRecord(timestamp=0.0, source="net", severity=severity,
                         message=message, session_id=session),
        template_id=TEMPLATE_IDS[template],
        template=template,
        variables=variables,
    )


def _normal_session(index: int, size: int = 138):
    """The normal flow behind Table I: send → ack, repeated."""
    session = f"n{index}"
    ip = "10.250.11.53"
    events = []
    for repeat in range(3):
        events.append(
            _event(SEND, (str(size + repeat * 7), ip, f"/{ip}"), session)
        )
        events.append(_event(ACK, (f"/{ip}",), session))
    return events


def bench_table1_sequential_vs_quantitative(benchmark, emit):
    training = [_normal_session(index) for index in range(60)]

    def build():
        full = DeepLogDetector(window=4, top_g=1, epochs=12, seed=0,
                               min_value_observations=30)
        full.fit(training)
        ablated = DeepLogDetector(window=4, top_g=1, epochs=12, seed=0,
                                  quantitative=False)
        ablated.fit(training)
        return full, ablated

    full, ablated = once(benchmark, build)

    ip = "10.250.11.53"
    # L1 -> L4 -> L2: the paper's sequential anomaly example.
    sequential = [
        _event(SEND, ("138", ip, f"/{ip}"), "seq"),
        _event(VERIFY_FAIL, (ip, f"/{ip}"), "seq", Severity.ERROR),
        _event(RECV_ERROR, (ip, f"/{ip}"), "seq", Severity.ERROR),
    ]
    # L3: normal flow, absurd transfer size (745675869 bytes).
    quantitative = _normal_session(999)
    quantitative[2] = _event(SEND, ("745675869", ip, f"/{ip}"), "n999")

    normal = _normal_session(1000)

    rows = [
        ("L1->L4->L2 (sequential)", sequential, True),
        ("L3 oversized transfer (quantitative)", quantitative, True),
        ("normal flow", normal, False),
    ]
    table = Table(
        "Table I — anomaly categories (DeepLog, quantitative head ablation)",
        ["case", "expected", "full model", "no quantitative head"],
    )
    outcomes = {}
    for label, session, expected in rows:
        full_verdict = full.detect(session).anomalous
        ablated_verdict = ablated.detect(session).anomalous
        outcomes[label] = (full_verdict, ablated_verdict)
        table.add_row(
            label,
            "anomaly" if expected else "normal",
            "flagged" if full_verdict else "passed",
            "flagged" if ablated_verdict else "passed",
        )
    emit()
    emit(table.render())

    # Shape: both models catch the sequential case; only the full model
    # catches L3; neither fires on the normal flow.
    assert outcomes["L1->L4->L2 (sequential)"][0]
    assert outcomes["L1->L4->L2 (sequential)"][1]
    assert outcomes["L3 oversized transfer (quantitative)"][0]
    assert not outcomes["L3 oversized transfer (quantitative)"][1]
    assert not outcomes["normal flow"][0]
