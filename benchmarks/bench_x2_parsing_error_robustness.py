"""X2 — planned experiment: LSTM robustness to parsing errors.

"All the presented anomaly detection approaches use structured logs as
input, and log parsing is not an error-free step.  We want to evaluate
the robustness of LSTM approaches regarding the potential errors due
to the parsing step." (§III)

Test sessions are altered with LogRobust-style instability (badly
parsed lines, twisted statements, noise) at 0–20 % before re-parsing;
the sweep reports each deep detector's F1 per ratio.  This bench is
also the index/semantic vectorization ablation DESIGN.md calls out:
DeepLog sees template indices, LogRobust sees semantic vectors.
"""

from conftest import once
from repro.datasets import train_test_split
from repro.detection import (
    DeepLogDetector,
    LogAnomalyDetector,
    LogRobustDetector,
    sessions_from_parsed,
)
from repro.eval import Table
from repro.logs.instability import InstabilityInjector
from repro.metrics.detection import confusion_counts
from repro.parsing import DrainParser, default_masker

RATIOS = (0.0, 0.05, 0.1, 0.2)


def _prepare(dataset, ratio):
    """Train/test sessions with instability injected into the test half."""
    train, test = train_test_split(
        dataset, train_fraction=0.6, anomaly_free_training=False, seed=4
    )
    parser = DrainParser(masker=default_masker())
    train_map = sessions_from_parsed(parser.parse_all(train.records))
    test_records = test.records
    if ratio > 0:
        injector = InstabilityInjector(ratio=ratio, seed=9)
        test_records = list(injector.apply(test_records))
    test_map = sessions_from_parsed(parser.parse_all(test_records))

    train_sessions = [s for s in train_map.values() if len(s) >= 2]
    train_labels = [
        train.sessions[sid].anomalous
        for sid, s in train_map.items()
        if len(s) >= 2
    ]
    test_sessions = []
    test_labels = []
    for session_id, events in test_map.items():
        if len(events) < 2:
            continue
        test_sessions.append(events)
        test_labels.append(test.sessions[session_id].anomalous)
    return train_sessions, train_labels, test_sessions, test_labels


def bench_x2_parsing_error_robustness(benchmark, hdfs_bench, emit):
    def run():
        results = {}
        for ratio in RATIOS:
            train_sessions, train_labels, test_sessions, test_labels = (
                _prepare(hdfs_bench, ratio)
            )
            detectors = {
                "deeplog (index vectors)": DeepLogDetector(
                    epochs=8, seed=0, quantitative=False
                ),
                "loganomaly (semantic match)": LogAnomalyDetector(
                    epochs=8, seed=0
                ),
                "logrobust (semantic vectors)": LogRobustDetector(
                    epochs=25, seed=0
                ),
            }
            for name, detector in detectors.items():
                detector.fit(train_sessions, train_labels)
                predictions = detector.predict_many(test_sessions)
                results[(name, ratio)] = confusion_counts(
                    predictions, test_labels
                ).f1
        return results

    results = once(benchmark, run)

    table = Table(
        "X2 — F1 vs injected instability ratio (HDFS test sessions)",
        ["detector"] + [f"{int(ratio * 100)}%" for ratio in RATIOS],
    )
    names = sorted({name for name, _ in results})
    for name in names:
        table.add_row(name, *[results[(name, ratio)] for ratio in RATIOS])
    emit()
    emit(table.render())

    # Shape: every model is hurt by instability; the index-vector model
    # (DeepLog) loses at least as much F1 as the semantic-vector model
    # (LogRobust) across the sweep.
    for name in names:
        assert results[(name, 0.0)] >= results[(name, 0.2)] - 0.05
    deeplog_drop = results[("deeplog (index vectors)", 0.0)] - results[
        ("deeplog (index vectors)", 0.2)
    ]
    logrobust_drop = results[("logrobust (semantic vectors)", 0.0)] - results[
        ("logrobust (semantic vectors)", 0.2)
    ]
    assert deeplog_drop >= logrobust_drop - 0.1
