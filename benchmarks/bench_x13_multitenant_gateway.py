"""X13 — multi-tenant gateway: noisy-neighbor isolation over shared pools.

The gateway (:mod:`repro.gateway`) multiplexes N per-tenant pipelines
over one executor, one metrics registry, and one checkpoint store.
The claim worth benchmarking is the isolation contract, not raw
throughput: a tenant that floods the gateway on a starved credit
budget must stall **only itself**.  Three checks, each load-bearing:

* **backpressure isolation** — the noisy tenant exhausts its own
  credit gate (``credit_waits > 0``) while every quiet tenant ingests
  without a single credit wait;
* **alert parity** — each quiet tenant's alerts are byte-identical
  (report ids, sessions, events, pools, criticality) to a standalone
  single-tenant pipeline fed the same corpus, noisy neighbor or not;
* **latency bound** — quiet tenants finish draining well before the
  flooding tenant does; a shared (broken) gate would drag them to the
  noisy tenant's completion time.
"""

import asyncio
import os
import time

from conftest import once
from repro.api import Pipeline, PipelineSpec
from repro.eval import Table
from repro.gateway import Gateway
from repro.ingest import AsyncSourceAdapter
from repro.logs.record import LogRecord, Severity

_SMOKE = bool(os.environ.get("MONILOG_BENCH_SMOKE"))
_QUIET_TENANTS = ("acme", "globex")
_QUIET_SESSIONS = 12 if _SMOKE else 60
_NOISY_SESSIONS = 120 if _SMOKE else 900
_NOISY_CREDITS = 16
_SESSION_TIMEOUT = 30.0
_GAP_S = 40.0  # event-time gap between sessions (> session timeout)
#: Quiet tenants must drain in at most this fraction of the noisy
#: tenant's wall clock.  Deliberately generous — a shared gate would
#: put the ratio near 1.0; real isolation lands far below the bound.
_MAX_QUIET_FRACTION = 0.75


def _sessions(prefix, count, anomalous_every):
    records = []
    for session in range(count):
        sid = f"{prefix}-{session}"
        start = session * _GAP_S
        request = session * 1000 + 31
        messages = (
            [f"request {request} accepted"]
            + [f"request {request} fetched 4096 bytes"] * 3
            + (["backend timeout error detected",
                "retrying request now please"] * 2
               if anomalous_every and session % anomalous_every == 2 else [])
            + [f"request {request} completed fine"]
        )
        for sequence, message in enumerate(messages):
            severity = (Severity.ERROR if "error" in message
                        else Severity.INFO)
            records.append(LogRecord(
                timestamp=round(start + sequence * 0.040, 3),
                source=prefix, severity=severity, message=message,
                session_id=sid, sequence=sequence,
            ))
    return records


class _TimedAdapter(AsyncSourceAdapter):
    """An adapter that records when its tenant finished draining it."""

    def __init__(self, records, name, done):
        super().__init__(records, name=name)
        self._done = done

    async def items(self, start_offset=0):
        async for item in super().items(start_offset):
            yield item
        self._done[self.name] = time.perf_counter()


def _alert_key(alert):
    return (alert.report.report_id, alert.report.session_id,
            alert.report.events, alert.pool, alert.criticality)


def bench_x13_noisy_neighbor_isolation(benchmark, emit, snapshot):
    history = _sessions("hist", 8, anomalous_every=0)
    quiet_live = {name: _sessions(name, _QUIET_SESSIONS, anomalous_every=3)
                  for name in _QUIET_TENANTS}
    noisy_live = _sessions("noisy", _NOISY_SESSIONS, anomalous_every=3)

    spec = PipelineSpec.from_dict({
        "detector": "keyword",
        "session_timeout": _SESSION_TIMEOUT,
        "tenants": {
            # The small ingest batch keeps the starved tenant flushing
            # on size rather than stalling out the max_batch_age timer:
            # the bench measures gate contention, not timer latency.
            "noisy": {"credits": _NOISY_CREDITS, "ingest_batch_size": 8},
            **{name: {} for name in _QUIET_TENANTS},
        },
    })

    # Standalone references: each quiet tenant's spec alone, no
    # gateway, no neighbors — the parity baseline.
    expected = {}
    for name in _QUIET_TENANTS:
        with Pipeline(spec.tenant_spec(name).replace(streaming=True)) \
                as standalone:
            standalone.fit(history)
            expected[name] = [_alert_key(alert)
                              for alert in standalone.run_all(quiet_live[name])]
        assert expected[name], \
            "the injected error sessions must produce alerts"

    done: dict = {}
    gateway = Gateway(spec)
    gateway.fit(history)
    service = gateway.serve(sources={
        "noisy": [_TimedAdapter(noisy_live, "noisy", done)],
        **{name: [_TimedAdapter(quiet_live[name], name, done)]
           for name in _QUIET_TENANTS},
    })

    start = time.perf_counter()
    alerts = once(benchmark, lambda: asyncio.run(service.run()))
    total_s = time.perf_counter() - start
    stats = service.stats()
    gateway.close()

    # Backpressure isolation: the flood stalls only itself.
    assert stats["noisy"].credit_waits > 0, (
        f"the noisy tenant must exhaust its {_NOISY_CREDITS}-credit "
        "budget; the bench would otherwise measure nothing"
    )
    for name in _QUIET_TENANTS:
        assert stats[name].credit_waits == 0, (
            f"quiet tenant {name!r} hit the credit gate "
            f"({stats[name].credit_waits} waits) — budgets are leaking "
            "across tenants"
        )

    # Alert parity: the gateway changes nothing about quiet alerts.
    for name in _QUIET_TENANTS:
        served = [_alert_key(tagged.alert) for tagged in alerts
                  if tagged.tenant == name]
        assert served == expected[name], (
            f"tenant {name!r} alerts diverged from its standalone "
            "pipeline — served tenants must be byte-identical"
        )

    # Latency bound: quiet tenants finish long before the flood does.
    noisy_s = done["noisy"] - start
    quiet_s = {name: done[name] - start for name in _QUIET_TENANTS}
    worst_quiet = max(quiet_s.values())
    assert worst_quiet <= _MAX_QUIET_FRACTION * noisy_s, (
        f"quiet tenants must not ride the noisy tenant's stall: worst "
        f"quiet drain {worst_quiet:.3f}s vs noisy {noisy_s:.3f}s "
        f"(bound {_MAX_QUIET_FRACTION:.0%})"
    )

    total = sum(entry.records_processed for entry in stats.values())
    table = Table(
        f"X13 — gateway serving {len(stats)} tenants, {total:,} records "
        f"(noisy budget: {_NOISY_CREDITS} credits)",
        ["tenant", "records", "drain s", "credit waits", "alerts"],
    )
    for name in ("noisy", *_QUIET_TENANTS):
        drained = noisy_s if name == "noisy" else quiet_s[name]
        table.add_row(
            name, f"{stats[name].records_processed:,}", f"{drained:.3f}",
            stats[name].credit_waits,
            sum(1 for tagged in alerts if tagged.tenant == name),
        )
    emit()
    emit(table.render())
    emit(f"\nquiet/noisy drain ratio: "
         f"{worst_quiet / noisy_s:.2f} (bound {_MAX_QUIET_FRACTION}), "
         f"quiet alerts identical to standalone pipelines")
    snapshot("x13_multitenant_gateway", {
        "tenants": len(stats),
        "records": total,
        "noisy_credit_waits": stats["noisy"].credit_waits,
        "noisy_drain_seconds": round(noisy_s, 4),
        "worst_quiet_drain_seconds": round(worst_quiet, 4),
        "quiet_noisy_ratio": round(worst_quiet / noisy_s, 4),
        "total_seconds": round(total_s, 4),
        "alerts": len(alerts),
    })
