"""X6 — planned contribution: the distributed tree-based parser.

"We plan to provide a distributed version of research tree-based log
parsing method as we already have some encouraging results." (§IV)

Shard-count sweep of :class:`repro.parsing.distributed.DistributedDrain`
against a single-instance Drain on the multi-source cloud corpus:
template-set agreement (Jaccard), grouping accuracy, load balance, and
single-thread throughput (the in-process runtime can't show wall-clock
speedup; a real deployment runs shards on separate cores — load
balance is the transferable measurement).
"""

import time

from conftest import once
from repro.eval import Table
from repro.metrics.parsing import grouping_accuracy
from repro.parsing import DistributedDrain, DrainParser, default_masker

SHARD_COUNTS = (1, 2, 4, 8)


def bench_x6_distributed_drain(benchmark, cloud_bench, emit):
    records = cloud_bench.records
    library = cloud_bench.library

    def run():
        reference = DrainParser(masker=default_masker())
        start = time.perf_counter()
        reference_parsed = reference.parse_all(records)
        reference_elapsed = time.perf_counter() - start
        reference_templates = set(reference.store.templates())
        rows = {}
        for shards in SHARD_COUNTS:
            parser = DistributedDrain(
                shards=shards, route_by="source", masker=default_masker()
            )
            start = time.perf_counter()
            parsed = parser.parse_all(records)
            elapsed = time.perf_counter() - start
            templates = set(parser.global_templates())
            jaccard = len(templates & reference_templates) / len(
                templates | reference_templates
            )
            loads = [load for load in parser.shard_loads]
            busy = [load for load in loads if load > 0]
            balance = min(busy) / max(busy) if busy else 0.0
            rows[shards] = {
                "jaccard": jaccard,
                "accuracy": grouping_accuracy(parsed, library),
                "templates": parser.template_count,
                "loads": "/".join(str(load) for load in loads),
                "balance": balance,
                "relative_time": elapsed / reference_elapsed,
            }
        rows["reference"] = {
            "accuracy": grouping_accuracy(reference_parsed, library),
            "templates": len(reference_templates),
        }
        return rows

    rows = once(benchmark, run)

    table = Table(
        "X6 — distributed Drain vs single instance (cloud corpus)",
        ["shards", "template jaccard", "grouping acc", "templates",
         "shard loads", "balance", "time vs single"],
    )
    table.add_row(
        "single", 1.0, rows["reference"]["accuracy"],
        rows["reference"]["templates"], "-", "-", 1.0,
    )
    for shards in SHARD_COUNTS:
        row = rows[shards]
        table.add_row(
            shards, row["jaccard"], row["accuracy"], row["templates"],
            row["loads"], row["balance"], row["relative_time"],
        )
    emit()
    emit(table.render())

    # Shape: sharding by source preserves the template set and the
    # grouping accuracy; 1-shard is exactly the single instance.
    assert rows[1]["jaccard"] == 1.0
    for shards in SHARD_COUNTS:
        assert rows[shards]["jaccard"] >= 0.9
        assert rows[shards]["accuracy"] >= rows["reference"]["accuracy"] - 0.02
