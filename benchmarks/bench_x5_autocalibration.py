"""X5 — planned experiment: unsupervised metrics and auto-parametrization.

"Unsupervised metrics opens promising perspectives for
auto-parametrizing log parser." (§IV)  Two questions, two tables:

1. Does the unsupervised quality score track the supervised metrics?
   (Spearman rank correlation over the Drain parameter grid.)
2. Does the acquire → calibrate → parse flow actually work?  Accuracy
   of the auto-calibrated parser vs library defaults vs the oracle
   (best grid point by supervised accuracy, unknowable in deployment).
"""

import numpy as np
from scipy import stats

from conftest import once
from repro.core.calibration import AutoCalibrator, DEFAULT_GRIDS, parameter_grid
from repro.eval import Table
from repro.metrics.parsing import grouping_accuracy, token_accuracy
from repro.metrics.unsupervised import (
    cluster_cohesion,
    mdl_score,
    template_separation,
    unsupervised_quality,
)
from repro.parsing import DrainParser, no_masker


def bench_x5_autocalibration(benchmark, hdfs_bench, cloud_bench, emit):
    # No masking: calibration targets the fully-automated deployment.
    def factory(**parameters):
        return DrainParser(masker=no_masker(), **parameters)

    datasets = {"hdfs": hdfs_bench, "cloud": cloud_bench}
    grid = parameter_grid(DEFAULT_GRIDS["drain"])

    def run():
        results = {}
        for name, dataset in datasets.items():
            sample = dataset.records[:1500]
            rows = []
            for parameters in grid:
                parser = factory(**parameters)
                parsed = parser.parse_all(sample)
                rows.append(
                    (
                        parameters,
                        unsupervised_quality(parsed),
                        grouping_accuracy(parsed, dataset.library),
                        token_accuracy(parsed, dataset.library),
                        {
                            "mdl": mdl_score(parsed),
                            "cohesion": cluster_cohesion(parsed),
                            "separation": template_separation(parsed),
                        },
                    )
                )
            unsupervised = [row[1] for row in rows]
            supervised = [row[2] for row in rows]
            correlation = stats.spearmanr(unsupervised, supervised)
            metric_correlations = {
                metric: float(
                    stats.spearmanr(
                        [row[4][metric] for row in rows], supervised
                    ).statistic
                )
                for metric in ("mdl", "cohesion", "separation")
            }

            calibrator = AutoCalibrator(factory, DEFAULT_GRIDS["drain"])
            chosen = calibrator.calibrate(sample).best_parameters

            def accuracy_of(parameters):
                parser = factory(**parameters)
                return grouping_accuracy(
                    parser.parse_all(dataset.records), dataset.library
                )

            results[name] = {
                "correlation": float(correlation.statistic),
                "metric_correlations": metric_correlations,
                "default": accuracy_of({}),
                "calibrated": accuracy_of(chosen),
                "oracle": max(accuracy_of(row[0]) for row in rows),
                "chosen": chosen,
            }
        return results

    results = once(benchmark, run)

    table = Table(
        "X5 — unsupervised metric vs supervised accuracy (Drain grid)",
        ["dataset", "spearman rho", "defaults", "auto-calibrated",
         "oracle", "chosen parameters"],
    )
    for name, row in results.items():
        table.add_row(
            name,
            row["correlation"],
            row["default"],
            row["calibrated"],
            row["oracle"],
            str(row["chosen"]),
        )
    emit()
    emit(table.render())

    # The paper also plans to "extend that study to the pertinence of
    # other unsupervised metrics" — per-metric rank correlations:
    metric_table = Table(
        "X5b — pertinence of individual unsupervised metrics (spearman rho)",
        ["dataset", "mdl", "cohesion", "separation", "combined"],
    )
    for name, row in results.items():
        metric_table.add_row(
            name,
            row["metric_correlations"]["mdl"],
            row["metric_correlations"]["cohesion"],
            row["metric_correlations"]["separation"],
            row["correlation"],
        )
    emit()
    emit(metric_table.render())

    # Shape: positive correlation, and calibration never loses to the
    # defaults while approaching the oracle.
    for name, row in results.items():
        assert row["correlation"] > 0.2, name
        assert row["calibrated"] >= row["default"] - 0.02, name
        assert row["calibrated"] >= row["oracle"] - 0.25, name
