"""X7 — §IV observation: extracting JSON payloads helps parsing.

"Almost 60% of the tokens composing log messages are coming from JSON
or XML-formatted data [...] We therefore recommend a preliminary step
to extract potential data coming from a structured format.  This helps
reduce the average length of log messages and can increase the
discovery rate of log parsing algorithms."

The cloud corpus with ``json_suffix=True`` appends a JSON payload to
every ``api`` record; the bench parses it with and without the
extraction step and reports template counts, accuracy against the
(payload-free) ground truth, and mean message length seen by the miner.
"""

from conftest import once
from repro.eval import Table
from repro.logs.record import tokenize
from repro.logs.structured import extract_structured_payload
from repro.metrics.parsing import grouping_accuracy
from repro.parsing import DrainParser, SpellParser, default_masker


def _strip(message: str) -> str:
    return extract_structured_payload(message).text


def bench_x7_structured_extraction(benchmark, cloud_json_bench, emit):
    records = cloud_json_bench.records
    library = cloud_json_bench.library
    api_records = [record for record in records if record.source == "api"]
    payload_tokens = sum(
        len(tokenize(record.message)) - len(tokenize(_strip(record.message)))
        for record in api_records
    )
    total_tokens = sum(len(tokenize(record.message)) for record in api_records)

    def run():
        results = {}
        for parser_name, factory in (
            ("drain", DrainParser),
            ("spell", SpellParser),
        ):
            for extract in (False, True):
                parser = factory(
                    masker=default_masker(), extract_structured=extract
                )
                parsed = parser.parse_all(records)
                api_parsed = [
                    event for event in parsed if event.source == "api"
                ]
                results[(parser_name, extract)] = {
                    "templates": parser.template_count,
                    "accuracy": grouping_accuracy(
                        parsed, library, normalize_message=_strip
                    ),
                    "payload_recovered": sum(
                        1 for event in api_parsed if event.payload
                    ),
                    "api_events": len(api_parsed),
                }
        return results

    results = once(benchmark, run)

    emit(
        f"\napi records carry {payload_tokens}/{total_tokens} tokens "
        f"({payload_tokens / total_tokens:.0%}) inside JSON payloads "
        "(paper observed ~60% on OUTSCALE services)"
    )
    table = Table(
        "X7 — structured-data extraction step (cloud, JSON-suffixed api logs)",
        ["parser", "extraction", "templates", "grouping acc",
         "payloads recovered"],
    )
    for (parser_name, extract), row in results.items():
        table.add_row(
            parser_name,
            "on" if extract else "off",
            row["templates"],
            row["accuracy"],
            f"{row['payload_recovered']}/{row['api_events']}",
        )
    emit()
    emit(table.render())

    # Shape: extraction strictly improves template discovery (fewer,
    # cleaner templates; higher accuracy) and recovers every payload.
    for parser_name in ("drain", "spell"):
        without = results[(parser_name, False)]
        with_extraction = results[(parser_name, True)]
        assert with_extraction["accuracy"] >= without["accuracy"]
        assert with_extraction["templates"] <= without["templates"]
        assert (
            with_extraction["payload_recovered"]
            == with_extraction["api_events"]
        )
