"""X14 — tracing overhead: strictly pay-for-what-you-sample.

The observability tier (:mod:`repro.telemetry.tracing`) promises that
end-to-end tracing is free when off and near-free when sampled low.
Three checks, each load-bearing:

* **alert identity** — alerts are byte-identical (report ids,
  sessions, events, pools, criticality) with tracing off, fully on
  (rate 1.0), and sparsely sampled (rate 0.01), under the serial,
  thread, and process executors.  Instrumentation reads clocks and
  counters, never state;
* **throughput bound** — a rate-0.01 traced run must keep at least
  95% of the untraced (telemetry on, tracing off) pipeline's record
  throughput — interleaved best-of-N on a chunked offline stream; an
  unsampled batch costs one counter increment, nothing more;
* **provenance completeness** — in a traced run *every* alert (not
  just sampled ones) resolves through ``Pipeline.explain`` to its
  source names, checkpoint offsets, template ids, detector window,
  and pool decision.  Alerts are rare; causality must not be.
"""

import os
import time

from conftest import once
from repro.api import Pipeline, PipelineSpec
from repro.eval import Table
from repro.logs.record import LogRecord, Severity

_SMOKE = bool(os.environ.get("MONILOG_BENCH_SMOKE"))
_SESSIONS = 150 if _SMOKE else 700
#: The identity matrix runs on _SESSIONS; the throughput comparison
#: drains a larger corpus so each round is long enough that scheduler
#: noise does not swamp a sub-5% bound.
_TIMING_SESSIONS = 800 if _SMOKE else 2000
_TIMING_REPEATS = 5 if _SMOKE else 7
_CHUNK = 256
_SESSION_TIMEOUT = 30.0
_GAP_S = 40.0  # event-time gap between sessions (> session timeout)
_SPARSE_RATE = 0.01
#: A sparsely sampled run must keep this fraction of the untraced
#: pipeline's throughput.
_MIN_THROUGHPUT_RATIO = 0.95
_EXECUTORS = ("serial", "thread", "process")
_TELEMETRY = {
    "off": {},
    "full": {"enabled": True, "tracing": True},
    "sampled": {"enabled": True, "tracing": True,
                "trace_sample_rate": _SPARSE_RATE},
}
#: Timing baseline: telemetry on, tracing off — the ratio isolates the
#: *marginal* cost of sampled tracing, not of metric collection.
_UNTRACED = {"enabled": True}


def _sessions(prefix, count, anomalous_every):
    records = []
    for session in range(count):
        sid = f"{prefix}-{session}"
        start = session * _GAP_S
        request = session * 1000 + 31
        messages = (
            [f"request {request} accepted"]
            + [f"request {request} fetched 4096 bytes"] * 3
            + (["backend timeout error detected",
                "retrying request now please"] * 2
               if anomalous_every and session % anomalous_every == 2 else [])
            + [f"request {request} completed fine"]
        )
        for sequence, message in enumerate(messages):
            severity = (Severity.ERROR if "error" in message
                        else Severity.INFO)
            records.append(LogRecord(
                timestamp=round(start + sequence * 0.040, 3),
                source=prefix, severity=severity, message=message,
                session_id=sid, sequence=sequence,
            ))
    return records


def _alert_key(alert):
    return (alert.report.report_id, alert.report.session_id,
            alert.report.events, alert.pool, alert.criticality)


def _spec(executor, telemetry):
    return PipelineSpec.from_dict({
        "detector": "keyword",
        "executor": executor,
        "shards": 2,
        "detector_shards": 2,
        "batch_size": 64,
        "session_timeout": _SESSION_TIMEOUT,
        "telemetry": dict(telemetry),
    })


def _run(spec, history, live):
    with Pipeline.from_spec(spec) as pipeline:
        pipeline.fit(history)
        alerts = pipeline.process(live)
    return [_alert_key(alert) for alert in alerts]


def _drain_once(telemetry, history, live):
    """One fit + chunked drain; returns its wall seconds."""
    with Pipeline.from_spec(_spec("serial", telemetry)) as pipeline:
        pipeline.fit(history)
        start = time.perf_counter()
        for cursor in range(0, len(live), _CHUNK):
            pipeline.process(live[cursor:cursor + _CHUNK])
        return time.perf_counter() - start


def _timed_pair(history, live):
    """Paired best-of-N drains: (untraced rec/s, sampled rec/s).

    Each repeat times the two variants back-to-back and the pair with
    the most favorable sampled/untraced ratio wins.  Comparing within
    one pair — one stretch of wall clock — lets transient machine load
    (CPU steal under a long CI run) slow both variants together and
    cancel, where independent per-variant bests let a single lucky
    untraced round poison the ratio.
    """
    best = None
    for _ in range(_TIMING_REPEATS):
        untraced = _drain_once(_UNTRACED, history, live)
        sampled = _drain_once(_TELEMETRY["sampled"], history, live)
        if best is None or untraced / sampled > best[0] / best[1]:
            best = (untraced, sampled)
    return len(live) / best[0], len(live) / best[1]


def bench_x14_tracing_overhead(benchmark, emit, snapshot):
    history = _sessions("hist", 8, anomalous_every=0)
    live = _sessions("live", _SESSIONS, anomalous_every=3)
    # Alert-sparse (4%) like production streams: the throughput bound
    # is about what *unsampled batches* cost, not per-alert provenance.
    timing_live = _sessions("timing", _TIMING_SESSIONS, anomalous_every=25)

    def measure():
        # Alert identity: off / full / sampled × three executors.
        matrix = {}
        for executor in _EXECUTORS:
            for mode, telemetry in _TELEMETRY.items():
                matrix[(executor, mode)] = _run(
                    _spec(executor, telemetry), history, live)
        # Throughput: untraced baseline vs sparsely sampled.
        off_rate, sampled_rate = _timed_pair(history, timing_live)
        return matrix, off_rate, sampled_rate

    matrix, off_rate, sampled_rate = once(benchmark, measure)

    reference = matrix[("serial", "off")]
    assert reference, "the injected error sessions must produce alerts"
    for (executor, mode), keys in matrix.items():
        assert keys == reference, (
            f"alerts diverged under executor={executor!r} "
            f"tracing={mode!r} — tracing must be byte-transparent"
        )

    ratio = sampled_rate / off_rate
    assert ratio >= _MIN_THROUGHPUT_RATIO, (
        f"rate-{_SPARSE_RATE} tracing kept only {ratio:.1%} of the "
        f"untraced throughput (bound {_MIN_THROUGHPUT_RATIO:.0%}) — "
        "unsampled batches must cost one counter increment"
    )

    # Provenance completeness: every alert of a traced run explains
    # back to offsets and template ids, sampled or not.
    explained = 0
    with Pipeline.from_spec(_spec("serial", _TELEMETRY["sampled"])) \
            as pipeline:
        pipeline.fit(history)
        alerts = pipeline.process(live)
        for alert in alerts:
            provenance = pipeline.explain(alert.report.report_id)
            report = alert.report
            assert provenance.session_id == report.session_id
            assert len(provenance.records) == len(report.events)
            for event, (source, offset, template_id) in zip(
                    report.events, provenance.records):
                assert source == event.source
                assert offset == event.record.sequence
                assert template_id == event.template_id
            explained += 1
        dump = pipeline.trace_dump()
    assert explained == len(alerts)

    table = Table(
        f"X14 — tracing overhead: identity over {len(live):,} records, "
        f"throughput over {len(timing_live):,} (keyword detector)",
        ["mode", "records/s", "vs untraced", "alerts"],
    )
    table.add_row("untraced", f"{off_rate:,.0f}", "1.00x",
                  len(reference))
    table.add_row(f"sampled ({_SPARSE_RATE})", f"{sampled_rate:,.0f}",
                  f"{ratio:.2f}x", len(reference))
    emit()
    emit(table.render())
    emit(f"\nalerts byte-identical across {len(matrix)} "
         f"executor x tracing cells; {explained} alerts explained to "
         f"offsets + template ids ({len(dump['spans'])} spans sampled "
         f"at rate {_SPARSE_RATE})")
    snapshot("x14_tracing_overhead", {
        "records": len(live),
        "identity_cells": len(matrix),
        "alerts": len(reference),
        "explained": explained,
        "untraced_records_per_s": round(off_rate, 1),
        "sampled_records_per_s": round(sampled_rate, 1),
        "throughput_ratio": round(ratio, 4),
        "sample_rate": _SPARSE_RATE,
        "sampled_spans": len(dump["spans"]),
    })
