"""X16 — continuous profiling: observable hot paths, invisible cost.

The profiling tier (:mod:`repro.telemetry.profiling`) promises that
the wall-clock sampler watches the pipeline from the outside: it reads
frames, never state.  Three checks, each load-bearing:

* **alert identity** — alerts are byte-identical (report ids,
  sessions, events, pools, criticality) with the profiler off and on,
  under the serial, thread, and process executors.  The sampled
  threads execute nothing for the sampler; the only in-band code is
  two GIL-atomic stage-marker list ops per hook;
* **throughput bound** — a profiled run at the default rate (100 Hz)
  must keep at least 95% of the unprofiled (telemetry on) pipeline's
  record throughput — interleaved best-of-N on a chunked offline
  stream, same pairing discipline as X14;
* **stage attribution** — on a parse-heavy serial workload at an
  elevated sampling rate, at least 80% of samples must land inside a
  named pipeline stage (parse/sessionize/detect/classify/fit) rather
  than ``other``: a profile that cannot say *which stage* is hot would
  be a flat flamegraph, not an observability feature.
"""

import os
import time

from conftest import once
from repro.api import Pipeline, PipelineSpec
from repro.eval import Table
from repro.logs.record import LogRecord, Severity
from repro.telemetry.profiling import UNATTRIBUTED_STAGE

_SMOKE = bool(os.environ.get("MONILOG_BENCH_SMOKE"))
_SESSIONS = 150 if _SMOKE else 700
#: The identity matrix runs on _SESSIONS; the throughput comparison
#: drains a larger corpus so each round is long enough that scheduler
#: noise does not swamp a sub-5% bound.
_TIMING_SESSIONS = 800 if _SMOKE else 2000
_TIMING_REPEATS = 5 if _SMOKE else 7
_CHUNK = 256
_SESSION_TIMEOUT = 30.0
_GAP_S = 40.0  # event-time gap between sessions (> session timeout)
_EXECUTORS = ("serial", "thread", "process")
#: A profiled run at the default 100 Hz must keep this fraction of the
#: unprofiled pipeline's throughput.
_MIN_THROUGHPUT_RATIO = 0.95
#: Fraction of samples that must land inside a named pipeline stage on
#: the parse-heavy attribution workload.
_MIN_ATTRIBUTED = 0.80
#: The attribution check keeps draining until the profiler holds this
#: many samples — a fraction over a handful of samples is noise.
_MIN_SAMPLES = 150
_ATTRIBUTION_HZ = 500.0
_ATTRIBUTION_DEADLINE_S = 120.0
#: Throughput baseline: telemetry on, profiler off — the ratio
#: isolates the *marginal* cost of sampling, not of metric collection.
_UNPROFILED = {"enabled": True}
_PROFILED = {"enabled": True, "profile": True}


def _sessions(prefix, count, anomalous_every):
    records = []
    for session in range(count):
        sid = f"{prefix}-{session}"
        start = session * _GAP_S
        request = session * 1000 + 31
        messages = (
            [f"request {request} accepted"]
            + [f"request {request} fetched 4096 bytes"] * 3
            + (["backend timeout error detected",
                "retrying request now please"] * 2
               if anomalous_every and session % anomalous_every == 2 else [])
            + [f"request {request} completed fine"]
        )
        for sequence, message in enumerate(messages):
            severity = (Severity.ERROR if "error" in message
                        else Severity.INFO)
            records.append(LogRecord(
                timestamp=round(start + sequence * 0.040, 3),
                source=prefix, severity=severity, message=message,
                session_id=sid, sequence=sequence,
            ))
    return records


def _attribution_sessions(count):
    """A deliberately parse-heavy corpus for the attribution check.

    Long, token-rich messages keep Drain template mining — a marked
    stage — dominant over the per-record batching glue between stage
    hooks, which legitimately samples as ``other``: the bound measures
    marker coverage of stage work, not the glue's share of a corpus
    too cheap to parse.
    """
    records = []
    for session in range(count):
        sid = f"attr-{session}"
        start = session * _GAP_S
        request = session * 1000 + 31
        for sequence in range(10):
            message = (
                f"request {request} dispatched to backend {session % 17} "
                f"shard {sequence % 5} payload {request * 31} bytes "
                f"checksum {request ^ 48879:08x} attempt {sequence} "
                f"latency {sequence * 3 + 1} ms queue depth "
                f"{(session + sequence) % 9} status pending"
            )
            records.append(LogRecord(
                timestamp=round(start + sequence * 0.040, 3),
                source="attr", severity=Severity.INFO, message=message,
                session_id=sid, sequence=sequence,
            ))
    return records


def _alert_key(alert):
    return (alert.report.report_id, alert.report.session_id,
            alert.report.events, alert.pool, alert.criticality)


def _spec(executor, telemetry):
    return PipelineSpec.from_dict({
        "detector": "keyword",
        "executor": executor,
        "shards": 2,
        "detector_shards": 2,
        "batch_size": 64,
        "session_timeout": _SESSION_TIMEOUT,
        "telemetry": dict(telemetry),
    })


def _run(spec, history, live):
    with Pipeline.from_spec(spec) as pipeline:
        pipeline.fit(history)
        alerts = pipeline.process(live)
    return [_alert_key(alert) for alert in alerts]


def _drain_once(telemetry, history, live):
    """One fit + chunked drain; returns its wall seconds."""
    with Pipeline.from_spec(_spec("serial", telemetry)) as pipeline:
        pipeline.fit(history)
        start = time.perf_counter()
        for cursor in range(0, len(live), _CHUNK):
            pipeline.process(live[cursor:cursor + _CHUNK])
        return time.perf_counter() - start


def _timed_pair(history, live):
    """Paired best-of-N drains: (unprofiled rec/s, profiled rec/s).

    Each repeat times the two variants back-to-back and the pair with
    the most favorable profiled/unprofiled ratio wins — one stretch of
    wall clock per pair, so transient machine load slows both variants
    together and cancels (the X14 pairing discipline).  One discarded
    warm-up drain first: the very first drain of a process pays all
    the import/allocator warm-up, and letting the unprofiled variant
    absorb it would inflate the ratio well above 1.0 — a flattering
    bench number, but a useless trajectory baseline.
    """
    _drain_once(_UNPROFILED, history, live)
    best = None
    for _ in range(_TIMING_REPEATS):
        unprofiled = _drain_once(_UNPROFILED, history, live)
        profiled = _drain_once(_PROFILED, history, live)
        if best is None or unprofiled / profiled > best[0] / best[1]:
            best = (unprofiled, profiled)
    return len(live) / best[0], len(live) / best[1]


def _attribution_run(history, live):
    """Drain serially under a fast sampler until it holds enough
    samples; returns (attributed_fraction, samples, stage_samples).

    Serial executor on purpose: all pipeline work runs on the calling
    thread, which carries the stage markers — the check measures
    marker coverage of the pipeline's own code, not thread-pool
    hand-off accounting.  The deadline keeps a pathologically slow
    machine from looping forever; the sample floor keeps a fast one
    from judging a fraction over single digits.
    """
    telemetry = dict(_PROFILED, profile_hz=_ATTRIBUTION_HZ)
    deadline = time.monotonic() + _ATTRIBUTION_DEADLINE_S
    with Pipeline.from_spec(_spec("serial", telemetry)) as pipeline:
        pipeline.fit(history)
        profiler = pipeline.profiler
        while (profiler.stats()["samples"] < _MIN_SAMPLES
               and time.monotonic() < deadline):
            pipeline.process(live)
        # Stop before reading: samples taken after the drain (idle
        # loop bookkeeping) would dilute the fraction with "other".
        profiler.stop()
        stats = profiler.stats()
        return profiler.attributed_fraction(), stats["samples"], \
            stats["stage_samples"]


def bench_x16_profiling_overhead(benchmark, emit, snapshot):
    history = _sessions("hist", 8, anomalous_every=0)
    live = _sessions("live", _SESSIONS, anomalous_every=3)
    timing_live = _sessions("timing", _TIMING_SESSIONS, anomalous_every=25)
    attribution_live = _attribution_sessions(_TIMING_SESSIONS)

    def measure():
        # Alert identity: profiler off / on × three executors.
        matrix = {}
        for executor in _EXECUTORS:
            for mode, telemetry in (("off", _UNPROFILED),
                                    ("on", _PROFILED)):
                matrix[(executor, mode)] = _run(
                    _spec(executor, telemetry), history, live)
        # Throughput: unprofiled baseline vs profiled at 100 Hz.
        off_rate, on_rate = _timed_pair(history, timing_live)
        # Attribution: parse-heavy serial drain, elevated rate.
        attributed, samples, stage_samples = _attribution_run(
            history, attribution_live)
        return matrix, off_rate, on_rate, attributed, samples, \
            stage_samples

    matrix, off_rate, on_rate, attributed, samples, stage_samples = \
        once(benchmark, measure)

    reference = matrix[("serial", "off")]
    assert reference, "the injected error sessions must produce alerts"
    for (executor, mode), keys in matrix.items():
        assert keys == reference, (
            f"alerts diverged under executor={executor!r} "
            f"profiler={mode!r} — sampling must be byte-transparent"
        )

    ratio = on_rate / off_rate
    assert ratio >= _MIN_THROUGHPUT_RATIO, (
        f"profiling at the default rate kept only {ratio:.1%} of the "
        f"unprofiled throughput (bound {_MIN_THROUGHPUT_RATIO:.0%}) — "
        "sampling must stay out of the pipeline's way"
    )

    assert samples >= _MIN_SAMPLES, (
        f"the attribution drain collected only {samples} samples "
        f"(floor {_MIN_SAMPLES}) within its deadline"
    )
    assert attributed >= _MIN_ATTRIBUTED, (
        f"only {attributed:.1%} of {samples} samples landed inside a "
        f"named pipeline stage (bound {_MIN_ATTRIBUTED:.0%}); "
        f"per-stage counts: {stage_samples}"
    )

    table = Table(
        f"X16 — profiling overhead: identity over {len(live):,} "
        f"records, throughput over {len(timing_live):,} "
        f"(keyword detector)",
        ["mode", "records/s", "vs unprofiled", "alerts"],
    )
    table.add_row("unprofiled", f"{off_rate:,.0f}", "1.00x",
                  len(reference))
    table.add_row("profiled (100 Hz)", f"{on_rate:,.0f}",
                  f"{ratio:.2f}x", len(reference))
    emit()
    emit(table.render())
    attributed_stages = {stage: count
                         for stage, count in stage_samples.items()
                         if not stage.endswith(UNATTRIBUTED_STAGE)}
    emit(f"\nalerts byte-identical across {len(matrix)} "
         f"executor x profiler cells; {attributed:.1%} of {samples} "
         f"samples stage-attributed at {_ATTRIBUTION_HZ:g} Hz "
         f"({attributed_stages})")
    snapshot("x16_profiling_overhead", {
        "records": len(live),
        "identity_cells": len(matrix),
        "alerts": len(reference),
        "unprofiled_records_per_s": round(off_rate, 1),
        "profiled_records_per_s": round(on_rate, 1),
        "throughput_ratio": round(ratio, 4),
        "attributed_fraction": round(attributed, 4),
        "attribution_samples": samples,
        "attribution_hz": _ATTRIBUTION_HZ,
    })
