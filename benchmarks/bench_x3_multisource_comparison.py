"""X3 — planned experiment: LSTMs vs counter models on mixed streams.

"LSTMs are good at learning sequences, but in a multi-source
environment, execution flows from each source are mixed.  We want to
compare LSTM with PCA, IM, and LogClustering approaches using a
dataset extracted from such environment." (§III)

Two windowing regimes over the cloud-platform corpus, which doubles as
the windowing ablation from DESIGN.md:

* **session windows** — events grouped by request id: clean execution
  flows (the substrate does the demultiplexing);
* **sliding windows** — fixed-count windows over the time-interleaved
  multi-source stream: flows from concurrent requests are mixed, the
  situation the paper warns about.
"""

from conftest import once
from repro.datasets import train_test_split
from repro.detection import (
    DETECTORS,
    sessions_from_parsed,
    sliding_windows,
)
from repro.eval import Table
from repro.metrics.detection import confusion_counts
from repro.parsing import DrainParser, default_masker

WINDOW = 40


def _split_parse(dataset):
    train, test = train_test_split(
        dataset, train_fraction=0.6, anomaly_free_training=False, seed=6
    )
    parser = DrainParser(masker=default_masker())
    return (
        train,
        test,
        parser.parse_all(train.records),
        parser.parse_all(test.records),
    )


def _session_setting(split):
    train, test, train_parsed, test_parsed = split
    train_map = sessions_from_parsed(train_parsed)
    test_map = sessions_from_parsed(test_parsed)
    train_sessions = [s for s in train_map.values() if len(s) >= 2]
    train_labels = [
        train.sessions[sid].anomalous
        for sid, s in train_map.items()
        if len(s) >= 2
    ]
    test_sessions = [s for s in test_map.values() if len(s) >= 2]
    test_labels = [
        test.sessions[sid].anomalous
        for sid, s in test_map.items()
        if len(s) >= 2
    ]
    return train_sessions, train_labels, test_sessions, test_labels


def _sliding_setting(split):
    train, test, train_parsed, test_parsed = split

    def windows_and_labels(parsed, truths):
        windows = list(sliding_windows(parsed, WINDOW))
        labels = [
            any(
                truths[event.session_id].anomalous
                for event in window
                if event.session_id in truths
            )
            for window in windows
        ]
        return windows, labels

    train_windows, train_labels = windows_and_labels(
        train_parsed, train.sessions
    )
    test_windows, test_labels = windows_and_labels(test_parsed, test.sessions)
    return train_windows, train_labels, test_windows, test_labels


def bench_x3_multisource_comparison(benchmark, cloud_bench, emit):
    def run():
        split = _split_parse(cloud_bench)
        settings = {
            "session windows (demuxed flows)": _session_setting(split),
            "sliding windows (mixed stream)": _sliding_setting(split),
        }
        results = {}
        for setting_name, (train_x, train_y, test_x, test_y) in (
            settings.items()
        ):
            for name, factory in DETECTORS.items():
                kwargs = {"epochs": 8, "seed": 0} if name in (
                    "deeplog", "loganomaly") else (
                    {"epochs": 25, "seed": 0} if name == "logrobust" else {}
                )
                detector = factory(**kwargs)
                detector.fit(train_x, train_y)
                predictions = detector.predict_many(test_x)
                results[(setting_name, name)] = confusion_counts(
                    predictions, test_y
                )
        return results

    results = once(benchmark, run)

    for setting_name in (
        "session windows (demuxed flows)",
        "sliding windows (mixed stream)",
    ):
        table = Table(
            f"X3 — detector comparison: {setting_name}",
            ["detector", "precision", "recall", "f1"],
        )
        for name in DETECTORS:
            report = results[(setting_name, name)]
            table.add_row(name, report.precision, report.recall, report.f1)
        emit()
        emit(table.render())

    # Shape: mixing flows hurts the sequence models more than the
    # counter-based ones (paper's hypothesis).
    lstm = ("deeplog", "loganomaly")
    counter = ("pca", "invariants", "logclustering")

    def average_drop(names):
        drops = []
        for name in names:
            clean = results[("session windows (demuxed flows)", name)].f1
            mixed = results[("sliding windows (mixed stream)", name)].f1
            drops.append(clean - mixed)
        return sum(drops) / len(drops)

    assert average_drop(lstm) >= average_drop(counter) - 0.05, (
        f"LSTM drop {average_drop(lstm):.3f} vs "
        f"counter drop {average_drop(counter):.3f}"
    )
