"""X8 — batched fast path vs. per-record through the MoniLog pipeline.

The paper's real-time requirement means the pipeline must keep up with
cloud-scale traffic; this bench quantifies the batched fast path
(two-tier template cache + ``parse_batch`` / ``process_batch``) against
the per-record baseline on a repetitive 50k-line synthetic stream —
the regime the cache is built for, since real log traffic re-emits a
small statement vocabulary and whole lines verbatim (heartbeats,
per-entity lifecycles).

Two claims are checked, not just reported:

* throughput — the batched+cached parse path is at least 2× the
  per-record path on the repetitive stream;
* parity — both paths produce byte-identical events and byte-identical
  classified alerts, in the same order.
"""

import os
import random
import time

from conftest import once
from repro.api.pipeline import Pipeline
from repro.detection.keyword import KeywordMatchDetector
from repro.eval import Table
from repro.logs.record import LogRecord, Severity
from repro.parsing import DrainParser, default_masker

_SMOKE = bool(os.environ.get("MONILOG_BENCH_SMOKE"))
_LINES = 6_000 if _SMOKE else 50_000
_MIN_SPEEDUP = 1.2 if _SMOKE else 2.0


def _repetitive_stream(lines: int, seed: int = 7) -> list[LogRecord]:
    """An entity-lifecycle stream, repetitive the way real logs are.

    Each session handles one block id that recurs across its lines;
    the receive/acknowledge lines repeat verbatim once per replica
    (HDFS writes three copies), the serve line repeats once per read
    (blocks are written once, read many times), nodes and sizes come
    from small pools (a cluster has few nodes and quantized transfer
    sizes), and heartbeats repeat verbatim across sessions.  About 2%
    of sessions are anomalous: the transfer hits an exception and
    retries.
    """
    rng = random.Random(seed)
    nodes = [f"10.0.{index // 8}.{index % 8}" for index in range(32)]
    sizes = [str(rng.randrange(1, 9) * 1024) for _ in range(24)]
    records: list[LogRecord] = []
    session = 0
    while len(records) < lines:
        session_id = f"sx8-{session}"
        session += 1
        block = f"blk_{rng.randrange(10 ** 9)}"
        node = rng.choice(nodes)
        size = rng.choice(sizes)
        replicas = 3
        body = (
            [(Severity.INFO, f"Receiving block {block} src {node} dest {node}")]
            * replicas
            + [(Severity.INFO,
                f"Received block {block} of size {size} from {node}")]
            * replicas
            + [(Severity.INFO,
                f"PacketResponder 1 for block {block} terminating")]
            * replicas
            + [(Severity.INFO, f"Verification succeeded for {block}")] * 2
            + [(Severity.INFO, f"Served block {block} to {node}")]
            * rng.randrange(2, 6)
            + [
                (Severity.INFO, f"heartbeat from {node} ok"),
                (Severity.INFO,
                 f"Deleting block {block} file /data/current/{block}"),
            ]
        )
        anomalous = rng.random() < 0.02
        if anomalous:
            retry = [
                (Severity.ERROR, f"Exception in receiveBlock for block {block}"),
                (Severity.WARNING, f"Retrying transfer of block {block} to {node}"),
            ]
            body = body[:2] + retry * 4 + body[2:]
        for sequence, (severity, message) in enumerate(body):
            labels = frozenset(("anomaly",)) if anomalous else frozenset()
            records.append(LogRecord(
                timestamp=float(len(records)),
                source="hdfs",
                severity=severity,
                message=message,
                session_id=session_id,
                sequence=sequence,
                labels=labels,
            ))
    return records[:lines]


def bench_x8_parser_fast_path(benchmark, emit, snapshot):
    records = _repetitive_stream(_LINES)

    baseline = DrainParser(masker=default_masker(), cache_size=0)
    start = time.perf_counter()
    expected = [baseline.parse_record(record) for record in records]
    per_record_s = time.perf_counter() - start

    fast = DrainParser(masker=default_masker())
    start = time.perf_counter()
    actual = once(benchmark, lambda: fast.parse_batch(records))
    batched_s = time.perf_counter() - start

    assert actual == expected, "batched parse must be byte-identical"
    speedup = per_record_s / batched_s
    cache = fast.cache
    hit_rate = cache.total_hits / len(records)

    table = Table(
        f"X8 — parse stage on {len(records):,} repetitive lines",
        ["path", "seconds", "records/s", "speedup"],
    )
    table.add_row("per-record (no cache)", f"{per_record_s:.3f}",
                  f"{len(records) / per_record_s:,.0f}", "1.00x")
    table.add_row("batched + cached", f"{batched_s:.3f}",
                  f"{len(records) / batched_s:,.0f}", f"{speedup:.2f}x")
    emit()
    emit(table.render())
    emit(f"\ncache: {cache.line_hits:,} line hits, {cache.hits:,} template "
         f"hits, {cache.line_misses:,}/{cache.misses:,} line/template "
         f"misses, {cache.invalidations} invalidations "
         f"({hit_rate:.0%} hit rate)")
    snapshot("x8_parser_fast_path", {
        "lines": len(records),
        "per_record_seconds": round(per_record_s, 4),
        "batched_seconds": round(batched_s, 4),
        "speedup": round(speedup, 3),
        "cache_hit_rate": round(hit_rate, 4),
    })
    assert speedup >= _MIN_SPEEDUP, (
        f"batched+cached path must be >= {_MIN_SPEEDUP}x faster on a "
        f"repetitive stream, got {speedup:.2f}x"
    )


def bench_x8_pipeline_batched(benchmark, emit, snapshot):
    records = _repetitive_stream(_LINES)
    cut = len(records) * 2 // 10
    train, live = records[:cut], records[cut:]

    def build(cache: bool) -> Pipeline:
        # The keyword baseline keeps stage 2 deterministic and equally
        # priced on both paths, so the comparison isolates batching.
        system = Pipeline(
            parser=DrainParser(masker=default_masker(),
                               cache_size=65536 if cache else 0),
            detector=KeywordMatchDetector(),
        )
        system.fit(train)
        return system

    per_record = build(cache=False)
    start = time.perf_counter()
    expected = per_record.run_all(live)
    per_record_s = time.perf_counter() - start

    batched = build(cache=True)
    start = time.perf_counter()
    actual = once(benchmark, lambda: batched.process(live, batch_size=2048))
    batched_s = time.perf_counter() - start

    assert [
        (a.report.session_id, a.report.events, a.pool, a.criticality)
        for a in actual
    ] == [
        (a.report.session_id, a.report.events, a.pool, a.criticality)
        for a in expected
    ], "batched pipeline must emit identical alerts in identical order"
    assert actual, "the anomalous sessions must produce alerts"

    speedup = per_record_s / batched_s
    table = Table(
        f"X8 — full pipeline on {len(live):,} live records "
        f"(keyword detector)",
        ["path", "seconds", "records/s", "alerts", "speedup"],
    )
    table.add_row("run_all (per-record)", f"{per_record_s:.3f}",
                  f"{len(live) / per_record_s:,.0f}", len(expected), "1.00x")
    table.add_row("process_batch(2048)", f"{batched_s:.3f}",
                  f"{len(live) / batched_s:,.0f}", len(actual),
                  f"{speedup:.2f}x")
    emit()
    emit(table.render())
    flagged = {alert.report.session_id for alert in actual}
    truth = {record.session_id for record in live if record.is_anomalous}
    emit(f"\nflagged {len(flagged)} sessions ({len(flagged & truth)} of "
         f"{len(truth)} injected anomalies)")
    snapshot("x8_pipeline_batched", {
        "live_records": len(live),
        "per_record_seconds": round(per_record_s, 4),
        "batched_seconds": round(batched_s, 4),
        "speedup": round(speedup, 3),
        "alerts": len(actual),
    })
    assert speedup >= 1.2, (
        f"batching must pay for itself end to end, got {speedup:.2f}x"
    )
