"""F3 — Fig. 3: the customizable pool system with passive learning.

Regenerates the figure's Default / Team A / Team B layout as a running
experiment: alerts stream into pools, a simulated admin moves the
misrouted ones, and the table tracks routing accuracy per round and
per admin-diligence level — the cost curve of "feedback without any
extra human effort" (§V).
"""

from conftest import once
from repro.classify import (
    AdministratorSimulator,
    AnomalyClassifier,
    PoolManager,
)
from repro.classify.feedback import source_based_policy
from repro.core.reports import AnomalyReport
from repro.detection.base import DetectionResult
from repro.eval import Table
from repro.logs.record import LogRecord, ParsedLog, Severity

TEAM_OF_SOURCE = {"api": "team-a", "network": "team-b", "storage": "team-b"}

INCIDENTS = [
    ("api", "request failed status 500 internal error", Severity.ERROR),
    ("api", "request latency above threshold limit", Severity.WARNING),
    ("network", "link flap detected on uplink port", Severity.WARNING),
    ("network", "packet loss ratio exceeded budget", Severity.ERROR),
    ("storage", "volume entered degraded state now", Severity.ERROR),
    ("storage", "replication lag above threshold limit", Severity.WARNING),
]


def _report(report_id: int, source: str, template: str,
            severity: Severity) -> AnomalyReport:
    record = LogRecord(
        timestamp=float(report_id), source=source, severity=severity,
        message=template, session_id=f"s{report_id}",
    )
    return AnomalyReport(
        report_id=report_id,
        session_id=f"s{report_id}",
        events=(ParsedLog(record=record, template_id=0, template=template),),
        detection=DetectionResult(anomalous=True, score=1.0),
    )


def _run(diligence: float, rounds: int) -> list[float]:
    manager = PoolManager()
    manager.create_pool("team-a")
    manager.create_pool("team-b")
    classifier = AnomalyClassifier().attach(manager)
    admin = AdministratorSimulator(
        manager, source_based_policy(TEAM_OF_SOURCE),
        diligence=diligence, seed=11,
    )
    accuracies = []
    report_id = 0
    for _ in range(rounds):
        correct = 0
        for source, template, severity in INCIDENTS:
            alert = manager.deliver(
                classifier.classify(_report(report_id, source, template,
                                            severity))
            )
            report_id += 1
            if alert.pool == TEAM_OF_SOURCE[source]:
                correct += 1
            admin.review(alert)
        accuracies.append(correct / len(INCIDENTS))
    return accuracies


def bench_fig3_pool_routing(benchmark, emit):
    rounds = 10
    results = once(
        benchmark,
        lambda: {d: _run(d, rounds) for d in (1.0, 0.5, 0.2)},
    )
    table = Table(
        "Fig. 3 — pool routing accuracy by round (passive learning)",
        ["diligence"] + [f"round {i}" for i in range(rounds)],
    )
    for diligence, accuracies in results.items():
        table.add_row(
            f"{diligence:.1f}", *[f"{a:.2f}" for a in accuracies]
        )
    emit()
    emit(table.render())

    # Shape: a diligent admin's classifier converges to near-perfect
    # routing; lazier admins converge slower but converge.
    assert results[1.0][-1] >= 0.9
    assert results[1.0][-1] >= results[1.0][0]
    assert results[0.2][-1] >= results[0.2][0]
