"""F2 — Fig. 2: the log parsing step.

Regenerates the paper's parsing figure: the example line

    2020-03-19 15:38:55,977 - serviceManager - INFO -
        New process started: process x92 started on port 42

decomposed into HEADER fields plus the (template, variables) MESSAGE
split, then parser throughput on a full corpus.
"""

from conftest import once
from repro.eval import Table
from repro.logs.record import LogRecord, Severity
from repro.parsing import DrainParser, default_masker


def bench_fig2_example_line(benchmark, emit):
    parser = DrainParser(masker=default_masker())
    # Teach the parser the statement with a second occurrence so the
    # variable positions generalize, exactly as a stream would.
    for process, port in (("x17", "8080"), ("x92", "42")):
        record = LogRecord(
            timestamp=1584625135.977,
            source="serviceManager",
            severity=Severity.INFO,
            message=(
                f"New process started: process {process} started "
                f"on port {port}"
            ),
        )
        parsed = once(benchmark, lambda r=record: parser.parse_record(r)) \
            if process == "x92" else parser.parse_record(record)

    table = Table(
        "Fig. 2 — log parsing step (the paper's example line)",
        ["field", "value"],
    )
    table.add_row("TIMESTAMP", f"{parsed.record.timestamp:.3f}")
    table.add_row("SOURCE", parsed.record.source)
    table.add_row("LEVEL", parsed.record.severity.name)
    table.add_row("MESSAGE template", parsed.template)
    table.add_row("MESSAGE variables", str(parsed.variables))
    emit()
    emit(table.render())

    assert parsed.variables == ("x92", "42")
    assert "<*>" in parsed.template


def bench_fig2_parser_throughput(benchmark, hdfs_bench, emit):
    parser = DrainParser(masker=default_masker())

    def parse_corpus():
        return parser.parse_all(hdfs_bench.records)

    parsed = once(benchmark, parse_corpus)
    emit(
        f"\nDrain structured {len(parsed)} HDFS records into "
        f"{parser.template_count} templates"
    )
    assert len(parsed) == len(hdfs_bench.records)
